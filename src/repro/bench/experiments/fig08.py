"""Figure 8: overhead of generated delta code vs hand-optimized code.

Reads on TasKy and TasKy2 plus 100-insert batches on each, under the
initial (TasKy-side) and evolved (TasKy2-side) materialization. Three
implementations, making this a real two-backend measurement:

- "BiDEL (memory)"  — the pure-Python engine routing every statement;
- "BiDEL (SQLite)"  — the live execution backend: generated views and
  INSTEAD OF triggers executed by SQLite's query engine (the paper's
  actual architecture);
- "SQL (handwritten)" — the hand-optimized baseline of the paper.
"""

from __future__ import annotations

import random

from repro.backend.sqlite import LiveSqliteBackend
from repro.bench.harness import Experiment, ExperimentResult, register, time_call
from repro.sqlgen.handwritten import handwritten_tasky
from repro.workloads.tasky import build_tasky, random_task


def run(num_tasks: int = 5000, writes: int = 100, repeat: int = 3) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig8",
        title="Figure 8: QET of generated vs handwritten delta code (ms)",
        columns=("operation", "implementation", "materialization", "ms"),
    )
    for materialization in ("initial", "evolved"):
        scenario = build_tasky(num_tasks)
        live_scenario = build_tasky(num_tasks)
        backend = LiveSqliteBackend.attach(live_scenario.engine)
        if materialization == "evolved":
            scenario.materialize("TasKy2")
            live_scenario.materialize("TasKy2")
        tasky = scenario.connect("TasKy").cursor()
        tasky2 = scenario.connect("TasKy2").cursor()
        live_tasky = live_scenario.connect("TasKy").cursor()
        live_tasky2 = live_scenario.connect("TasKy2").cursor()
        baseline = handwritten_tasky(num_tasks, materialization=materialization)

        read_cases = [
            ("read on TasKy", "BiDEL (memory)", lambda: tasky.execute("SELECT * FROM Task").fetchall()),
            ("read on TasKy", "BiDEL (SQLite)", lambda: live_tasky.execute("SELECT * FROM Task").fetchall()),
            ("read on TasKy", "SQL (handwritten)", baseline.read_tasky),
            ("read on TasKy2", "BiDEL (memory)", lambda: tasky2.execute("SELECT * FROM Task").fetchall()),
            ("read on TasKy2", "BiDEL (SQLite)", lambda: live_tasky2.execute("SELECT * FROM Task").fetchall()),
            ("read on TasKy2", "SQL (handwritten)", baseline.read_tasky2),
        ]
        for operation, implementation, fn in read_cases:
            seconds = time_call(fn, repeat=repeat)
            result.add(operation, implementation, materialization, seconds * 1000)

        rng = random.Random(99)
        rows = [random_task(rng, 10_000_000 + i) for i in range(writes)]

        def writes_tasky(cursor) -> None:
            for row in rows:
                cursor.execute(
                    "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                    (row["author"], row["task"], row["prio"]),
                )

        def baseline_writes_tasky() -> None:
            for row in rows:
                baseline.insert_tasky(row["author"], row["task"], row["prio"])

        def writes_tasky2(cursor) -> None:
            fk = cursor.execute(
                "SELECT id FROM Author ORDER BY id LIMIT 1"
            ).fetchone()[0]
            for row in rows:
                cursor.execute(
                    "INSERT INTO Task(task, prio, author) VALUES (?, ?, ?)",
                    (row["task"], row["prio"], fk),
                )

        def baseline_writes_tasky2() -> None:
            _tasks, authors = baseline.read_tasky2()
            fk = authors[0][0] if authors else 1
            for row in rows:
                baseline.insert_tasky2(row["task"], row["prio"], fk)

        write_cases = [
            (f"{writes} writes on TasKy", "BiDEL (memory)", lambda: writes_tasky(tasky)),
            (f"{writes} writes on TasKy", "BiDEL (SQLite)", lambda: writes_tasky(live_tasky)),
            (f"{writes} writes on TasKy", "SQL (handwritten)", baseline_writes_tasky),
            (f"{writes} writes on TasKy2", "BiDEL (memory)", lambda: writes_tasky2(tasky2)),
            (f"{writes} writes on TasKy2", "BiDEL (SQLite)", lambda: writes_tasky2(live_tasky2)),
            (f"{writes} writes on TasKy2", "SQL (handwritten)", baseline_writes_tasky2),
        ]
        for operation, implementation, fn in write_cases:
            seconds = time_call(fn, repeat=1)
            result.add(operation, implementation, materialization, seconds * 1000)
        backend.close()
    result.note(
        "paper shape: generated code within ~4% of handwritten; reading the "
        "materialized version up to ~2x faster than the propagated one"
    )
    result.note(f"{num_tasks} tasks (paper: 100,000; use --paper-scale)")
    return result


register(
    Experiment(
        name="fig8",
        title="Overhead of generated delta code",
        paper_artifact="Figure 8",
        runner=run,
        quick_kwargs={"num_tasks": 5000, "writes": 100},
        paper_kwargs={"num_tasks": 100_000, "writes": 100},
    )
)
