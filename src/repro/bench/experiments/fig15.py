"""Figure 15 (extension): network serving throughput, remote vs in-process.

The serving layer's claim is that putting the engine behind a TCP wire
protocol keeps the concurrency story intact: N remote clients are N real
server-side sessions, so aggregate throughput must scale with clients
just as in-process sessions do — the protocol adds per-request latency,
not serialization.

A TasKy database on a file-backed WAL SQLite backend is driven by the
same read workload two ways:

- ``local`` — N threads, each with its own in-process connection
  (pooled session), as in fig14;
- ``remote`` — a :class:`~repro.server.server.ReproServer` in front of
  the same engine, N threads each with its own ``connect_remote`` TCP
  client.

Reported: ops/s over all clients and the speedup against one client of
the same transport.  The interesting numbers: remote-vs-local overhead
at 1 client (wire-protocol cost per statement) and the remote speedup
curve at 8/32 clients (does the server serialize?).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from repro.backend.sqlite import LiveSqliteBackend
from repro.bench.harness import Experiment, ExperimentResult, register
from repro.server.client import connect_remote
from repro.server.server import ReproServer
from repro.sql.connection import connect
from repro.workloads.tasky import build_tasky

READ_STATEMENTS = [
    ("TasKy", "SELECT count(rowid), sum(prio) FROM Task"),
    ("TasKy2", "SELECT count(task), min(prio) FROM Task"),
    ("Do!", "SELECT count(author) FROM Todo"),
]


def _run_clients(connect_fn, *, clients: int, ops: int) -> tuple[float, int]:
    """(elapsed seconds, completed ops) for ``clients`` concurrent
    connections issuing ``ops`` read statements each."""
    barrier = threading.Barrier(clients + 1)
    errors: list[Exception] = []

    def worker(index: int) -> None:
        conns: list[tuple] = []
        try:
            conns = [
                (connect_fn(version), sql) for version, sql in READ_STATEMENTS
            ]
            barrier.wait()
            for op in range(ops):
                conn, sql = conns[(index + op) % len(conns)]
                conn.execute(sql).fetchall()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            barrier.abort()
        finally:
            for conn, _ in conns:
                conn.close()

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    for thread in pool:
        thread.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass  # a worker failed during setup; its error is surfaced below
    start = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, clients * ops


def run(
    num_tasks: int = 5000,
    ops: int = 150,
    client_counts: tuple[int, ...] = (1, 8, 32),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig15",
        title="Figure 15: network serving throughput (remote vs in-process)",
        columns=("transport", "clients", "ops", "seconds", "ops_per_s", "speedup"),
    )
    with tempfile.TemporaryDirectory() as tmp:
        scenario = build_tasky(num_tasks)
        backend = LiveSqliteBackend.attach(
            scenario.engine,
            database=os.path.join(tmp, "fig15.db"),
            pool_size=max(client_counts) * 2,
        )
        server = ReproServer(scenario.engine).start()
        host, port = server.address

        def local_connect(version):
            return connect(scenario.engine, version, autocommit=True, backend=backend)

        def remote_connect(version):
            return connect_remote(
                host, port, version, autocommit=True, timeout=120.0
            )

        try:
            for transport, connect_fn in (
                ("local", local_connect),
                ("remote", remote_connect),
            ):
                baseline: float | None = None
                for clients in client_counts:
                    elapsed, completed = _run_clients(
                        connect_fn, clients=clients, ops=ops
                    )
                    throughput = completed / elapsed if elapsed else float("inf")
                    if baseline is None:
                        baseline = throughput
                    result.add(
                        transport,
                        clients,
                        completed,
                        elapsed,
                        throughput,
                        throughput / baseline,
                    )
        finally:
            server.close()
            backend.close()
    result.note(
        "same WAL database and read workload on both transports; every "
        "remote client is its own TCP connection and server-side session"
    )
    result.note(f"{num_tasks} tasks, {ops} ops/client")
    return result


register(
    Experiment(
        name="fig15",
        title="Network serving throughput",
        paper_artifact="Figure 15*",
        runner=run,
        quick_kwargs={"num_tasks": 5000, "ops": 150},
        paper_kwargs={"num_tasks": 100_000, "ops": 500},
    )
)
