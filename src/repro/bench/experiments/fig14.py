"""Figure 14 (extension): concurrent multi-session throughput.

The paper promises that co-existing schema versions serve many
applications at once; this experiment measures it.  A TasKy database is
attached to a file-backed WAL SQLite backend, then N threads — each with
its *own* pooled session — run workloads against the co-existing versions
concurrently:

- ``read`` — aggregate scans through the generated views (WAL readers
  never block each other: throughput should scale with sessions);
- ``mixed`` — 90% reads / 10% single-row writes across versions (writers
  serialize on SQLite's write lock, reads keep scaling).

Reported: ops/s over all threads and the speedup against one session.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from repro.backend.sqlite import LiveSqliteBackend
from repro.bench.harness import Experiment, ExperimentResult, register
from repro.errors import OperationalError
from repro.sql.connection import connect
from repro.workloads.tasky import build_tasky

READ_STATEMENTS = [
    ("TasKy", "SELECT count(rowid), sum(prio) FROM Task"),
    ("TasKy2", "SELECT count(task), min(prio) FROM Task"),
    ("Do!", "SELECT count(author) FROM Todo"),
]


def _run_workload(
    engine, backend, *, threads: int, ops: int, write_every: int | None
) -> tuple[float, int]:
    """(elapsed seconds, completed ops) for ``threads`` concurrent
    sessions issuing ``ops`` statements each."""
    barrier = threading.Barrier(threads + 1)
    errors: list[Exception] = []

    def worker(index: int) -> None:
        # Every worker cycles through ALL versions so the threads carry
        # identical work and finish together (no slow-thread tail skewing
        # the aggregate throughput).
        conns: list[tuple] = []
        writer = None
        try:
            conns = [
                (connect(engine, version, autocommit=True, backend=backend), sql)
                for version, sql in READ_STATEMENTS
            ]
            if write_every:
                writer = connect(engine, "TasKy", autocommit=True, backend=backend)
            barrier.wait()
            for op in range(ops):
                if write_every and op % write_every == write_every - 1:
                    for attempt in range(100):
                        try:
                            writer.execute(
                                "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                                (f"w{index}", f"bench {index}-{op}", 1 + op % 5),
                            )
                            break
                        except OperationalError as exc:
                            if "locked" not in str(exc) or attempt == 99:
                                raise
                            time.sleep(0.001)
                else:
                    conn, read_sql = conns[(index + op) % len(conns)]
                    conn.execute(read_sql).fetchall()
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            barrier.abort()
        finally:
            for conn, _ in conns:
                conn.close()
            if writer is not None:
                writer.close()

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass  # a worker failed during setup; its error is surfaced below
    start = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, threads * ops


def run(
    num_tasks: int = 5000,
    ops: int = 300,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8),
    write_every: int = 10,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig14",
        title="Figure 14: concurrent session throughput on the WAL backend",
        columns=("workload", "sessions", "ops", "seconds", "ops_per_s", "speedup"),
    )
    with tempfile.TemporaryDirectory() as tmp:
        for workload, per_thread_write in (("read", None), ("mixed", write_every)):
            scenario = build_tasky(num_tasks)
            backend = LiveSqliteBackend.attach(
                scenario.engine,
                database=os.path.join(tmp, f"fig14-{workload}.db"),
                pool_size=max(thread_counts) * 2,
            )
            baseline: float | None = None
            for threads in thread_counts:
                elapsed, completed = _run_workload(
                    scenario.engine,
                    backend,
                    threads=threads,
                    ops=ops,
                    write_every=per_thread_write,
                )
                throughput = completed / elapsed if elapsed else float("inf")
                if baseline is None:
                    baseline = throughput
                result.add(
                    workload,
                    threads,
                    completed,
                    elapsed,
                    throughput,
                    throughput / baseline,
                )
            backend.close()
    result.note(
        "every session is its own pooled sqlite3 connection; WAL readers "
        "do not serialize, writers queue on the write lock"
    )
    result.note(
        f"{num_tasks} tasks, {ops} ops/session, 1 write per "
        f"{write_every} ops in the mixed workload"
    )
    return result


register(
    Experiment(
        name="fig14",
        title="Concurrent multi-session throughput",
        paper_artifact="Figure 14*",
        runner=run,
        quick_kwargs={"num_tasks": 5000, "ops": 300},
        paper_kwargs={"num_tasks": 100_000, "ops": 1000},
    )
)
