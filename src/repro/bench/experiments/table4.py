"""Table 4: SMO histogram of the 211-SMO Wikimedia evolution."""

from __future__ import annotations

from repro.bench.harness import Experiment, ExperimentResult, register
from repro.workloads.wikimedia import TABLE4_HISTOGRAM, build_wikimedia


def run(scale: float = 0.001, versions: int = 171) -> ExperimentResult:
    scenario = build_wikimedia(scale=scale, versions=versions)
    histogram = scenario.smo_histogram()
    result = ExperimentResult(
        experiment="table4",
        title="Table 4: SMO usage in the Wikimedia database evolution",
        columns=("SMO", "occurrences", "paper"),
    )
    for kind, paper_count in TABLE4_HISTOGRAM.items():
        result.add(kind, histogram.get(kind, 0), paper_count)
    result.add("TOTAL", sum(histogram.values()), sum(TABLE4_HISTOGRAM.values()))
    result.note(
        f"{len(scenario.version_names)} schema versions built; synthetic "
        "history with the paper's exact histogram (see workloads.wikimedia)"
    )
    return result


register(
    Experiment(
        name="table4",
        title="Wikimedia SMO histogram",
        paper_artifact="Table 4",
        runner=run,
        quick_kwargs={"scale": 0.001, "versions": 171},
        paper_kwargs={"scale": 1.0, "versions": 171},
    )
)
