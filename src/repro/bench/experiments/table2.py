"""Table 2: the valid materialization schemas of the TasKy example and the
physical table schemas they imply."""

from __future__ import annotations

from repro.bench.harness import Experiment, ExperimentResult, register
from repro.catalog.materialization import (
    enumerate_valid_materializations,
    physical_table_versions,
)
from repro.workloads.tasky import build_tasky

_SMO_SHORT = {
    "Split": "SPLIT",
    "DropColumn": "DROP COLUMN",
    "Decompose": "DECOMPOSE",
    "RenameColumn": "RENAME COLUMN",
    "AddColumn": "ADD COLUMN",
    "Merge": "MERGE",
    "Join": "JOIN",
}


def run(num_tasks: int = 0) -> ExperimentResult:
    scenario = build_tasky(num_tasks)
    genealogy = scenario.engine.genealogy
    result = ExperimentResult(
        experiment="table2",
        title="Table 2: materialization schemas M and physical table schemas P (TasKy)",
        columns=("M", "P"),
    )
    schemas = enumerate_valid_materializations(genealogy)
    for schema in schemas:
        smo_names = sorted(
            _SMO_SHORT.get(smo.smo_type, smo.smo_type) for smo in schema
        )
        physical = physical_table_versions(genealogy, schema)
        tables = ", ".join(f"{tv.name}-{tv.uid}" for tv in physical)
        result.add("{" + ", ".join(smo_names) + "}", "{" + tables + "}")
    result.note(f"{len(schemas)} valid materialization schemas (paper: five)")
    result.note(
        "the provided paper text garbles the {SPLIT} row as {Task-0}; the "
        "semantics of a materialized SPLIT give {Todo-0} as derived here"
    )
    return result


register(
    Experiment(
        name="table2",
        title="Valid materialization schemas of TasKy",
        paper_artifact="Table 2",
        runner=run,
    )
)
