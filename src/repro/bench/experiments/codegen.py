"""Section 8.1: delta-code generation latency.

The paper reports 154 ms for creating the initial TasKy, 230 ms for the
two-SMO evolution to TasKy2, and 177 ms for Do! — all well under a second.
We time the same three Database Evolution Operations (catalog update, aux
table creation, eager ID initialization) plus the delta-code script
generation for good measure.
"""

from __future__ import annotations

from repro.bench.harness import Experiment, ExperimentResult, register, time_once
from repro.core.engine import InVerDa
from repro.sqlgen.scripts import generated_delta_code_for_version
from repro.workloads.tasky import DO_SCRIPT, TASKY2_SCRIPT, TASKY_INITIAL_SCRIPT


def run(num_tasks: int = 10_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment="codegen",
        title="Delta code generation latency (ms)",
        columns=("operation", "ms", "paper_ms"),
    )
    engine = InVerDa()
    initial = time_once(lambda: engine.execute(TASKY_INITIAL_SCRIPT)) * 1000
    result.add("create initial TasKy", initial, 154)

    import random

    from repro.sql.connection import connect
    from repro.workloads.tasky import random_task

    connection = connect(engine, "TasKy", autocommit=True)
    rng = random.Random(3)
    connection.executemany(
        "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
        [
            (row["author"], row["task"], row["prio"])
            for row in (random_task(rng, i) for i in range(num_tasks))
        ],
    )

    do_ms = time_once(lambda: engine.execute(DO_SCRIPT)) * 1000
    result.add("evolve to Do! (2 SMOs)", do_ms, 177)
    tasky2_ms = time_once(lambda: engine.execute(TASKY2_SCRIPT)) * 1000
    result.add("evolve to TasKy2 (2 SMOs)", tasky2_ms, 230)

    script_ms = time_once(lambda: generated_delta_code_for_version(engine, "TasKy2")) * 1000
    result.add("generate TasKy2 SQL delta code", script_ms, -1)
    result.note(
        "evolution latency includes eager ID initialization over "
        f"{num_tasks} rows for the FK decomposition; the paper's <1 s bound "
        "holds throughout"
    )
    return result


register(
    Experiment(
        name="codegen",
        title="Delta-code generation latency",
        paper_artifact="Sec 8.1",
        runner=run,
        quick_kwargs={"num_tasks": 10_000},
        paper_kwargs={"num_tasks": 100_000},
    )
)
