"""Figure 10: accumulated overhead for the longer Do!→TasKy2 adoption.

Users start on the phone app Do!, then move to TasKy2. Three fixed
materializations (Do!, TasKy, TasKy2) are compared against InVerDa's
flexible strategy, which starts at Do!, moves to the intermediate TasKy
materialization, and finally to TasKy2 — intermediate stages are exactly
what fixed handwritten delta code cannot exploit.
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import Experiment, ExperimentResult, register
from repro.workloads.mixes import PAPER_MIX, adoption_curve, run_mix
from repro.workloads.tasky import build_tasky


def _sweep(scenario, *, slices: int, ops_per_slice: int, migrations: dict[float, str]) -> float:
    rng = random.Random(77)
    curve = adoption_curve(slices)
    do = scenario.connect("Do!")
    tasky2 = scenario.connect("TasKy2")
    pending = dict(migrations)
    total = 0.0

    def do_row():
        row = scenario.next_task()
        return {"author": row["author"], "task": row["task"]}

    def tasky2_row():
        authors = tasky2.execute("SELECT id FROM Author").fetchall()
        fk = rng.choice(authors)[0] if authors else None
        row = scenario.next_task()
        return {"task": row["task"], "prio": row["prio"], "author": fk}

    for fraction in curve:
        for threshold in sorted(pending):
            if fraction >= threshold:
                start = time.perf_counter()
                scenario.materialize(pending.pop(threshold))
                total += time.perf_counter() - start
        new_ops = round(ops_per_slice * fraction)
        old_ops = ops_per_slice - new_ops
        start = time.perf_counter()
        if old_ops:
            run_mix(
                do,
                "Todo",
                old_ops,
                PAPER_MIX,
                rng,
                make_row=do_row,
                update_row=lambda row: {"task": row["task"] + "!"},
            )
        if new_ops:
            run_mix(
                tasky2,
                "Task",
                new_ops,
                PAPER_MIX,
                rng,
                make_row=tasky2_row,
                update_row=lambda row: {"prio": rng.randint(1, 5)},
            )
        total += time.perf_counter() - start
    return total


def run(num_tasks: int = 2000, slices: int = 20, ops_per_slice: int = 20) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig10",
        title="Figure 10: accumulated overhead, Do!→TasKy2 adoption (seconds)",
        columns=("strategy", "accumulated_s"),
    )
    configs = [
        ("fixed: Do! materialized", "Do!", {}),
        ("fixed: TasKy materialized", None, {}),
        ("fixed: TasKy2 materialized", "TasKy2", {}),
        ("flexible (Do!→TasKy→TasKy2)", "Do!", {0.35: "TasKy", 0.7: "TasKy2"}),
    ]
    for label, initial_materialization, migrations in configs:
        scenario = build_tasky(num_tasks)
        if initial_materialization is not None:
            scenario.materialize(initial_materialization)
        total = _sweep(
            scenario, slices=slices, ops_per_slice=ops_per_slice, migrations=migrations
        )
        result.add(label, total)
    result.note(
        "paper shape: flexible materialization (via the intermediate TasKy "
        "stage) stays below every fixed choice over the whole adoption"
    )
    return result


register(
    Experiment(
        name="fig10",
        title="Flexible materialization, Do! vs TasKy2",
        paper_artifact="Figure 10",
        runner=run,
        quick_kwargs={"num_tasks": 2000, "slices": 20, "ops_per_slice": 20},
        paper_kwargs={"num_tasks": 100_000, "slices": 1000, "ops_per_slice": 1000},
    )
)
