"""Figure 9: accumulated overhead under a shifting TasKy→TasKy2 workload.

The workload mix (50 % reads, 20 % inserts, 20 % updates, 10 % deletes)
moves from 100 % TasKy to 100 % TasKy2 along the Technology Adoption Life
Cycle. Fixed materializations pay growing propagation costs; InVerDa's
flexible materialization migrates mid-way (migration cost included).
"""

from __future__ import annotations

import random
import time

from repro.bench.harness import Experiment, ExperimentResult, register
from repro.workloads.mixes import PAPER_MIX, adoption_curve, run_mix
from repro.workloads.tasky import build_tasky


def _run_adoption(
    scenario,
    *,
    slices: int,
    ops_per_slice: int,
    strategy: str,
    switch_at: float = 0.5,
) -> float:
    """Total seconds spent executing the whole adoption sweep."""
    rng = random.Random(1234)
    curve = adoption_curve(slices)
    tasky = scenario.connect("TasKy")
    tasky2 = scenario.connect("TasKy2")
    total = 0.0
    switched = False

    def tasky_row():
        return scenario.next_task()

    def tasky2_row():
        authors = tasky2.execute("SELECT id FROM Author").fetchall()
        fk = rng.choice(authors)[0] if authors else None
        row = scenario.next_task()
        return {"task": row["task"], "prio": row["prio"], "author": fk}

    for fraction in curve:
        if strategy == "flexible" and not switched and fraction >= switch_at:
            start = time.perf_counter()
            scenario.materialize("TasKy2")
            total += time.perf_counter() - start
            switched = True
        new_ops = round(ops_per_slice * fraction)
        old_ops = ops_per_slice - new_ops
        start = time.perf_counter()
        if old_ops:
            run_mix(
                tasky,
                "Task",
                old_ops,
                PAPER_MIX,
                rng,
                make_row=tasky_row,
                update_row=lambda row: {"prio": rng.randint(1, 5)},
            )
        if new_ops:
            run_mix(
                tasky2,
                "Task",
                new_ops,
                PAPER_MIX,
                rng,
                make_row=tasky2_row,
                update_row=lambda row: {"prio": rng.randint(1, 5)},
            )
        total += time.perf_counter() - start
    return total


def run(num_tasks: int = 2000, slices: int = 20, ops_per_slice: int = 20) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig9",
        title="Figure 9: accumulated overhead, TasKy→TasKy2 adoption (seconds)",
        columns=("strategy", "materialization", "accumulated_s"),
    )
    configs = [
        ("fixed", "initial (TasKy)"),
        ("fixed-evolved", "evolved (TasKy2)"),
        ("flexible", "flexible (InVerDa)"),
    ]
    for strategy, label in configs:
        scenario = build_tasky(num_tasks)
        if strategy == "fixed-evolved":
            scenario.materialize("TasKy2")
        total = _run_adoption(
            scenario,
            slices=slices,
            ops_per_slice=ops_per_slice,
            strategy="flexible" if strategy == "flexible" else "fixed",
        )
        result.add(strategy, label, total)
    result.note(
        "paper shape: the flexible materialization (including migration "
        "cost) beats both fixed materializations over the full adoption"
    )
    result.note(
        f"{num_tasks} tasks, {slices} slices x {ops_per_slice} ops "
        "(paper: 100,000 tasks, 1000 x 1000; use --paper-scale)"
    )
    return result


register(
    Experiment(
        name="fig9",
        title="Flexible materialization, TasKy vs TasKy2",
        paper_artifact="Figure 9",
        runner=run,
        quick_kwargs={"num_tasks": 2000, "slices": 20, "ops_per_slice": 20},
        paper_kwargs={"num_tasks": 100_000, "slices": 1000, "ops_per_slice": 1000},
    )
)
