"""Figure 16 (extension): the statement hot path vs SMO-chain depth.

The paper's core claim is that co-existing schema versions cost
*negligible overhead* because delta code is compiled once and served
cheaply.  This experiment measures the two optimizations that make the
reproduction live up to that at depth:

- **plan caching** (``cached`` vs ``cold``): a repeated statement skips
  parsing and planner lowering via the engine's shared
  :class:`~repro.sql.plancache.PlanCache` (and sqlite3's per-session
  prepared-statement cache);
- **flattened view composition** (``flat`` vs ``nested``): the backend
  emits one algebraically composed view per table version instead of an
  N-deep nested view stack, so SQLite's planner sees one shallow query.
  Nested UNION-shaped chains (SPLIT every few steps) expand
  *exponentially* under SQLite's textual view expansion — at depth 16
  the nested emission is close to unusable, which is exactly the
  regression this experiment guards against.

The schema chain alternates RENAME COLUMN with a SPLIT TABLE every
fourth step — a depth-16 chain holds 4 union-shaped levels, the worst
realistic shape the composer must keep linear.  Reported per depth
(1/4/16), mode, and transport: p50/p95 statement latency and read
throughput on the tip version.  ``remote`` rows serve the flat/cached
configuration through the TCP server (the server-side connection shares
the same plan cache).
"""

from __future__ import annotations

import statistics
import time

from repro.backend.sqlite import LiveSqliteBackend
from repro.bench.harness import Experiment, ExperimentResult, register
from repro.core.engine import InVerDa
from repro.sql import parser as sql_parser
from repro.sql.connection import connect

#: Chain steps at which a SPLIT (union-shaped level) is inserted.
SPLIT_EVERY = 4


def build_chain(depth: int, rows: int) -> tuple[InVerDa, str]:
    """An engine with ``depth`` SMOs chained off the initial version
    (RENAME COLUMN steps with a SPLIT TABLE every ``SPLIT_EVERY``-th),
    ``rows`` rows inserted at the base; returns (engine, tip table name)."""
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION S0 WITH CREATE TABLE T0(a TEXT, b INTEGER, c INTEGER);"
    )
    conn = connect(engine, "S0", autocommit=True)
    conn.executemany(
        "INSERT INTO T0(a, b, c) VALUES (?, ?, ?)",
        [(f"a{i % 37}", i % 11, i) for i in range(rows)],
    )
    conn.close()
    table, column = "T0", "a"
    for step in range(1, depth + 1):
        if step % SPLIT_EVERY == 0:
            new_table = f"T{step}"
            engine.execute(
                f"CREATE SCHEMA VERSION S{step} FROM S{step - 1} WITH "
                f"SPLIT TABLE {table} INTO {new_table} WITH b >= 0;"
            )
            table = new_table
        else:
            engine.execute(
                f"CREATE SCHEMA VERSION S{step} FROM S{step - 1} WITH "
                f"RENAME COLUMN {column} IN {table} TO a{step};"
            )
            column = f"a{step}"
    return engine, table


def _measure(connection, sql: str, ops: int, *, cold: bool = False) -> dict:
    """p50/p95 statement latency (ms) and throughput for ``ops`` repeats
    of ``sql``.  ``cold=True`` clears the parse cache before every
    statement so each op pays the full parse+plan cost (the connection
    must also have been opened with ``plan_cache=False``)."""
    connection.execute(sql).fetchall()  # warm (plan cache, sqlite stmt cache)
    latencies = []
    start = time.perf_counter()
    for _ in range(ops):
        if cold:
            sql_parser._parse_statement_cached.cache_clear()
        before = time.perf_counter()
        connection.execute(sql).fetchall()
        latencies.append(time.perf_counter() - before)
    elapsed = time.perf_counter() - start
    latencies.sort()
    return {
        "p50_ms": statistics.median(latencies) * 1000.0,
        "p95_ms": latencies[min(len(latencies) - 1, int(len(latencies) * 0.95))]
        * 1000.0,
        "ops_per_s": ops / elapsed if elapsed else float("inf"),
    }


def run(
    rows: int = 5000,
    ops: int = 150,
    depths: tuple[int, ...] = (1, 4, 16),
    nested_depth_cap: int = 16,
    remote: bool = True,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig16",
        title="Figure 16: statement hot path vs SMO-chain depth",
        columns=(
            "depth",
            "views",
            "plans",
            "transport",
            "ops",
            "p50_ms",
            "p95_ms",
            "ops_per_s",
        ),
    )
    summary: dict[tuple[int, str], float] = {}
    # Throwaway warmup round: the first measured configuration must not
    # absorb process warmup (imports, allocator growth) into its numbers.
    warm_engine, warm_table = build_chain(1, min(rows, 500))
    warm_backend = LiveSqliteBackend.attach(warm_engine)
    warm_conn = connect(warm_engine, "S1", autocommit=True, backend=warm_backend)
    _measure(warm_conn, f"SELECT count(rowid) FROM {warm_table}", 20)
    warm_conn.close()
    warm_backend.close()
    for depth in depths:
        configurations = [("flat", "cached"), ("flat", "cold"), ("nested", "cached")]
        for views, plans in configurations:
            if views == "nested" and depth > nested_depth_cap:
                result.note(
                    f"nested emission skipped at depth {depth}: SQLite's "
                    "textual view expansion is exponential in union levels"
                )
                continue
            engine, table = build_chain(depth, rows)
            backend = LiveSqliteBackend.attach(engine, flatten=(views == "flat"))
            sql = f"SELECT count(rowid), sum(b) FROM {table}"
            connection = connect(
                engine,
                f"S{depth}",
                autocommit=True,
                backend=backend,
                plan_cache=(plans == "cached"),
            )
            # Fewer ops for the slow nested configuration so deep chains
            # stay benchmarkable.
            effective_ops = ops if views == "flat" else max(10, ops // 10)
            measured = _measure(
                connection, sql, effective_ops, cold=(plans == "cold")
            )
            summary[(depth, f"{views}-{plans}")] = measured["ops_per_s"]
            result.add(
                depth,
                views,
                plans,
                "in-process",
                effective_ops,
                measured["p50_ms"],
                measured["p95_ms"],
                measured["ops_per_s"],
            )
            if remote and views == "flat" and plans == "cached":
                from repro.server.client import connect_remote
                from repro.server.server import ReproServer

                server = ReproServer(engine).start()
                try:
                    remote_conn = connect_remote(
                        *server.address, f"S{depth}", autocommit=True, timeout=60.0
                    )
                    measured = _measure(remote_conn, sql, effective_ops)
                    summary[(depth, "remote")] = measured["ops_per_s"]
                    result.add(
                        depth,
                        views,
                        plans,
                        "remote",
                        effective_ops,
                        measured["p50_ms"],
                        measured["p95_ms"],
                        measured["ops_per_s"],
                    )
                    remote_conn.close()
                finally:
                    server.close()
            connection.close()
            backend.close()
        flat = summary.get((depth, "flat-cached"))
        nested = summary.get((depth, "nested-cached"))
        cold = summary.get((depth, "flat-cold"))
        if flat and nested:
            result.note(f"depth {depth}: flat/nested = {flat / nested:.2f}x")
        if flat and cold:
            result.note(f"depth {depth}: cached/cold = {flat / cold:.2f}x")
    result.note(
        f"{rows} rows at the base version; chain = RENAME COLUMN with a "
        f"SPLIT every {SPLIT_EVERY}th step; read workload on the tip version"
    )
    return result


register(
    Experiment(
        name="fig16",
        title="Statement hot path vs SMO-chain depth",
        paper_artifact="Figure 16*",
        runner=run,
        quick_kwargs={"rows": 5000, "ops": 150},
        paper_kwargs={"rows": 50_000, "ops": 400},
    )
)
