"""Table 3: code-size ratio between SQL delta code and BiDEL scripts."""

from __future__ import annotations

from repro.bench.harness import Experiment, ExperimentResult, register
from repro.sqlgen.scripts import tasky_generated_scripts
from repro.util.codemetrics import measure_code


def run() -> ExperimentResult:
    scripts = tasky_generated_scripts()
    result = ExperimentResult(
        experiment="table3",
        title="Table 3: SQL vs BiDEL code size for TasKy",
        columns=("artifact", "language", "lines", "statements", "characters", "ratio(lines)"),
    )
    pairs = [
        ("initially", scripts.bidel_initial, scripts.sql_initial),
        ("evolution", scripts.bidel_evolution, scripts.sql_evolution),
        ("migration", scripts.bidel_migration, scripts.sql_migration),
    ]
    for artifact, bidel_code, sql_code in pairs:
        bidel = measure_code(bidel_code)
        sql = measure_code(sql_code)
        ratio = sql.ratio_to(bidel)
        result.add(artifact, "BiDEL", bidel.lines, bidel.statements, bidel.characters, 1.0)
        result.add(artifact, "SQL", sql.lines, sql.statements, sql.characters, ratio.lines)
    result.note(
        "paper ratios: evolution x119.67 LoC, migration x182.00 LoC; the SQL "
        "column here is the delta code our compiler generates (what a "
        "developer would otherwise write), which is denser than hand-written "
        "PostgreSQL, so ratios are smaller but the direction is identical"
    )
    return result


register(
    Experiment(
        name="table3",
        title="SQL vs BiDEL code size",
        paper_artifact="Table 3",
        runner=run,
    )
)
