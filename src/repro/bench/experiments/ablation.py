"""Ablation benches for the design choices called out in DESIGN.md.

- *rules vs fast path*: reads served by evaluating the declarative Datalog
  rule sets directly, versus the hand-specialised state maps the engine
  uses (both derive from the same rules; the tests prove they agree).
- *delta vs full put*: single-row writes propagated key-locally versus the
  always-correct whole-state lens put.
"""

from __future__ import annotations

import random

from repro.bench.harness import Experiment, ExperimentResult, register, time_call, time_once
from repro.bidel.smo.base import FixedContext, TableChange
from repro.datalog.evaluate import evaluate
from repro.workloads.tasky import build_tasky, random_task


def run(num_tasks: int = 3000, writes: int = 50) -> ExperimentResult:
    result = ExperimentResult(
        experiment="ablation",
        title="Ablations: rule evaluation vs fast path; delta vs full put (ms)",
        columns=("case", "variant", "ms"),
    )
    scenario = build_tasky(num_tasks, with_tasky2=False)
    engine = scenario.engine
    split_smo = next(
        smo for smo in engine.genealogy.evolution_smos() if smo.smo_type == "Split"
    )
    semantics = split_smo.semantics
    source_tv = split_smo.sources[0]
    extent = engine.read_table_version(source_tv, cache={})

    # Reads: γ_tgt of the SPLIT via the fast path vs the Datalog evaluator.
    ctx = FixedContext({"U": extent})
    fast_ms = time_call(lambda: semantics.map_forward(ctx), repeat=3) * 1000
    rules = semantics.gamma_tgt_rules()
    facts = {"U": {(key, *row) for key, row in extent.items()}}
    rules_ms = time_call(lambda: evaluate(rules, facts), repeat=3) * 1000
    result.add("read through SPLIT", "fast path (state map)", fast_ms)
    result.add("read through SPLIT", "Datalog rule evaluation", rules_ms)

    # Writes: key-local delta propagation vs whole-state put.
    rng = random.Random(11)
    tasky_cursor = scenario.connect("TasKy").cursor()

    def delta_writes() -> None:
        for index in range(writes):
            row = random_task(rng, 20_000_000 + index)
            tasky_cursor.execute(
                "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                (row["author"], row["task"], row["prio"]),
            )

    delta_ms = time_once(delta_writes) * 1000

    def full_put_writes() -> None:
        for index in range(writes):
            row = random_task(rng, 30_000_000 + index)
            key = engine.allocate_key()
            change = TableChange(upserts={key: source_tv.schema.row_from_mapping(row)})
            out = engine._full_put(
                split_smo, {"U": change}, direction="forward", cache={}
            )
            engine._dispatch(
                split_smo, out, direction="forward", cache={}, visited={split_smo.uid}
            )

    # Only meaningful when the split target is materialized; flip it.
    scenario.materialize("Do!") if "Do!" in engine.version_names() else None
    full_ms = time_once(full_put_writes) * 1000
    result.add(f"{writes} inserts via SPLIT", "key-local delta", delta_ms)
    result.add(f"{writes} inserts via SPLIT", "whole-state lens put", full_ms)
    result.note(
        "design ablation: declarative rules are the semantics of record; "
        "the fast path and delta propagation only buy performance"
    )
    return result


register(
    Experiment(
        name="ablation",
        title="Rules vs fast path; delta vs full put",
        paper_artifact="DESIGN.md",
        runner=run,
        quick_kwargs={"num_tasks": 3000, "writes": 50},
        paper_kwargs={"num_tasks": 50_000, "writes": 200},
    )
)
