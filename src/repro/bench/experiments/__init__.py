"""Experiment modules; importing this package registers all experiments."""

from repro.bench.experiments import (  # noqa: F401
    ablation,
    codegen,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    table2,
    table3,
    table4,
)
