"""The schema version catalog (Section 3 of the paper).

The catalog is InVerDa's central knowledge base: a directed acyclic
hypergraph whose vertices are *table versions* and whose hyperedges are
*SMO instances*, plus the mapping from schema-version names to sets of
table versions and the materialization state of every SMO.
"""

from repro.catalog.genealogy import Genealogy, SmoInstance, TableVersion
from repro.catalog.materialization import (
    MaterializationSchema,
    enumerate_valid_materializations,
    physical_table_versions,
    validate_materialization,
)
from repro.catalog.versions import SchemaVersion

__all__ = [
    "Genealogy",
    "SmoInstance",
    "TableVersion",
    "SchemaVersion",
    "MaterializationSchema",
    "physical_table_versions",
    "validate_materialization",
    "enumerate_valid_materializations",
]
