"""Materialization schemas: where the data physically lives (Section 7).

The materialization states of all SMO instances form the *materialization
schema* ``M``; it determines the *physical table schema* ``P`` (the set of
table versions whose data tables exist). The paper's validity conditions:

- (55) every source table version of a materialized SMO must itself be fed
  by a materialized SMO (CREATE TABLE SMOs count as always materialized);
- (56) no source table version of a materialized SMO may be consumed by
  another materialized SMO.

``P`` then contains exactly the table versions whose incoming SMO is
materialized (or initial) and that have no outgoing materialized SMO —
reproducing Table 2 for the TasKy example (including the ``{SPLIT} →
{Todo-0}`` row, which the provided paper text garbles as ``{Task-0}``).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.catalog.genealogy import Genealogy, SmoInstance, TableVersion
from repro.errors import MaterializationError

MaterializationSchema = frozenset[SmoInstance]


def _incoming_materialized(tv: TableVersion, materialized: MaterializationSchema) -> bool:
    return tv.incoming is not None and (tv.incoming.is_initial or tv.incoming in materialized)


def validate_materialization(
    genealogy: Genealogy, materialized: Iterable[SmoInstance]
) -> MaterializationSchema:
    """Check conditions (55) and (56); returns the normalized schema."""
    schema = frozenset(smo for smo in materialized if not smo.is_initial)
    for smo in schema:
        for source in smo.sources:
            if not _incoming_materialized(source, schema):
                raise MaterializationError(
                    f"condition (55) violated: source {source.name!r} of "
                    f"{smo!r} is not materialized"
                )
            for other in source.outgoing:
                if other is smo or other.is_initial:
                    continue
                if other in schema:
                    raise MaterializationError(
                        f"condition (56) violated: {source.name!r} feeds both "
                        f"{smo!r} and {other!r}"
                    )
    return schema


def physical_table_versions(
    genealogy: Genealogy, materialized: MaterializationSchema
) -> list[TableVersion]:
    """The physical table schema ``P`` implied by ``M`` (Table 2)."""
    physical: list[TableVersion] = []
    for uid in sorted(genealogy.table_versions):
        tv = genealogy.table_versions[uid]
        if not _incoming_materialized(tv, materialized):
            continue
        if any(
            (not out.is_initial) and out in materialized for out in tv.outgoing
        ):
            continue
        physical.append(tv)
    return physical


def current_materialization(genealogy: Genealogy) -> MaterializationSchema:
    return frozenset(smo for smo in genealogy.evolution_smos() if smo.materialized)


def enumerate_valid_materializations(genealogy: Genealogy) -> list[MaterializationSchema]:
    """All valid materialization schemas (five for the TasKy example).

    The number is bounded below by linear SMO chains (N+1 for a chain of N)
    and above by independent SMOs (2^N), as discussed in Section 8.3. The
    enumeration prunes using condition (55): a valid schema is closed under
    "incoming SMO of every source is materialized", so candidates grow
    along the genealogy only.
    """
    smos = genealogy.evolution_smos()
    valid: list[MaterializationSchema] = []
    # For realistic genealogy sizes in benchmarks this brute force would be
    # 2^N; instead grow schemas incrementally: start from the empty schema
    # and repeatedly try to extend with one more SMO whose preconditions
    # already hold.
    seen: set[MaterializationSchema] = set()
    frontier: list[MaterializationSchema] = [frozenset()]
    seen.add(frozenset())
    while frontier:
        schema = frontier.pop()
        valid.append(schema)
        for smo in smos:
            if smo in schema:
                continue
            candidate = schema | {smo}
            if frozenset(candidate) in seen:
                continue
            try:
                normalized = validate_materialization(genealogy, candidate)
            except MaterializationError:
                continue
            if normalized not in seen:
                seen.add(normalized)
                frontier.append(normalized)
    valid.sort(key=lambda schema: (len(schema), sorted(smo.uid for smo in schema)))
    return valid


def materialization_for_versions(
    genealogy: Genealogy, table_versions: Iterable[TableVersion]
) -> MaterializationSchema:
    """Derive the materialization schema that puts exactly the given table
    versions into the physical table schema (the MATERIALIZE command).

    Every SMO on the path from the initial tables to a requested table
    version must be materialized; everything else stays virtual. Validity
    is checked afterwards, so requesting an inconsistent set (e.g. both
    ``Do!`` and ``TasKy2`` table versions that compete for ``Task``) fails
    with a clear error.
    """
    requested = list(table_versions)
    schema: set[SmoInstance] = set()
    stack = list(requested)
    while stack:
        tv = stack.pop()
        smo = tv.incoming
        if smo is None or smo.is_initial:
            continue
        if smo not in schema:
            schema.add(smo)
            stack.extend(smo.sources)
    normalized = validate_materialization(genealogy, schema)
    physical = set(physical_table_versions(genealogy, normalized))
    missing = [tv for tv in requested if tv not in physical]
    if missing:
        names = ", ".join(f"{tv.name} (#{tv.uid})" for tv in missing)
        raise MaterializationError(
            f"requested table versions are not the tips of the resulting "
            f"materialization schema: {names}"
        )
    return normalized
