"""Schema versions: named, user-facing sets of table versions.

Schema versions *share* table versions when a table is untouched by the
evolution between them (the paper: "Schema versions share a table version
if the table evolves in-between them").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import AccessError

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.genealogy import TableVersion


@dataclass
class SchemaVersion:
    """A user-visible schema version: ``name`` plus its table versions."""

    name: str
    tables: dict[str, "TableVersion"] = field(default_factory=dict)
    parent: str | None = None
    dropped: bool = False

    def table_version(self, table_name: str) -> "TableVersion":
        try:
            return self.tables[table_name]
        except KeyError:
            raise AccessError(
                f"schema version {self.name!r} has no table {table_name!r}"
            ) from None

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def describe(self) -> dict[str, tuple[str, ...]]:
        """Table name -> column names, for documentation and tests."""
        return {
            name: tv.schema.column_names for name, tv in sorted(self.tables.items())
        }
