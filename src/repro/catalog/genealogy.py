"""The genealogy hypergraph of table versions and SMO instances.

Each vertex is a :class:`TableVersion`; each hyperedge is an
:class:`SmoInstance` evolving a set of source table versions into a set of
target table versions. Every table version is created by exactly one
incoming SMO instance and consumed by arbitrarily many outgoing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.catalog.versions import SchemaVersion
from repro.errors import CatalogError
from repro.relational.schema import TableSchema
from repro.util.naming import physical_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.bidel.ast import SmoNode
    from repro.bidel.smo.base import SmoSemantics


@dataclass
class TableVersion:
    """One version of one table (a vertex of the genealogy)."""

    uid: int
    name: str  # user-visible name within its schema versions
    schema: TableSchema  # user-visible columns (the id ``p`` stays hidden)
    created_in: str  # schema version name in which this table version appeared

    # Name of the visible column that mirrors the generated row identifier
    # of the FK/condition SMOs (e.g. Author.id); such columns are assigned
    # by the engine and cannot be updated.
    key_column: str | None = None

    # Genealogy links (kept in sync by Genealogy)
    incoming: "SmoInstance | None" = None
    outgoing: list["SmoInstance"] = field(default_factory=list)

    @property
    def data_table_name(self) -> str:
        """Physical name of this table version's data table (when stored)."""
        return physical_name("d", str(self.uid), self.name)

    @property
    def view_name(self) -> str:
        """Name of the generated view serving this table version's reads
        and writes on a live execution backend (and in emitted delta code)."""
        return physical_name("v" + str(self.uid), self.name)

    @property
    def stage_table_name(self) -> str:
        """Staging table used by generated trigger programs to assemble
        this table version's post-write extent."""
        return physical_name("stage", str(self.uid), self.name)

    def trigger_name(self, operation: str) -> str:
        """Name of the INSTEAD OF trigger for ``operation`` on the view."""
        return physical_name("tg", str(self.uid), operation.lower())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TableVersion {self.name}@{self.created_in} #{self.uid}>"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TableVersion) and other.uid == self.uid


@dataclass
class SmoInstance:
    """One SMO application (a hyperedge of the genealogy)."""

    uid: int
    node: "SmoNode"  # the parsed BiDEL operation
    sources: tuple[TableVersion, ...]
    targets: tuple[TableVersion, ...]
    evolution: str  # name of the schema version this SMO helped create
    materialized: bool = False  # True = data stored on the target side
    semantics: "SmoSemantics | None" = None

    @property
    def smo_type(self) -> str:
        return type(self.node).__name__

    @property
    def is_initial(self) -> bool:
        """CREATE TABLE SMOs have no sources and are implicitly always
        materialized (their targets are the initial physical tables)."""
        return not self.sources

    def aux_table_name(self, role: str) -> str:
        return physical_name("aux", str(self.uid), role)

    def sequence_name(self, role: str) -> str:
        return physical_name("seq", str(self.uid), role)

    def put_table_name(self, role: str) -> str:
        """Staging table for the ``role`` output of this SMO's generated
        write-propagation (put) programs."""
        return physical_name("put", str(self.uid), role)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "mat" if self.materialized else "virt"
        return f"<SMO #{self.uid} {self.smo_type} [{state}]>"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SmoInstance) and other.uid == self.uid


@dataclass
class Genealogy:
    """The full catalog: versions, table versions, SMO instances."""

    schema_versions: dict[str, SchemaVersion] = field(default_factory=dict)
    table_versions: dict[int, TableVersion] = field(default_factory=dict)
    smo_instances: dict[int, SmoInstance] = field(default_factory=dict)
    _next_table_uid: int = 0
    _next_smo_uid: int = 0

    # -- construction -----------------------------------------------------

    def new_table_version(self, name: str, schema: TableSchema, created_in: str) -> TableVersion:
        uid = self._next_table_uid
        self._next_table_uid += 1
        tv = TableVersion(uid=uid, name=name, schema=schema, created_in=created_in)
        self.table_versions[uid] = tv
        return tv

    def new_smo_instance(
        self,
        node: "SmoNode",
        sources: Iterable[TableVersion],
        targets: Iterable[TableVersion],
        evolution: str,
        *,
        materialized: bool = False,
    ) -> SmoInstance:
        uid = self._next_smo_uid
        self._next_smo_uid += 1
        smo = SmoInstance(
            uid=uid,
            node=node,
            sources=tuple(sources),
            targets=tuple(targets),
            evolution=evolution,
            materialized=materialized,
        )
        self.smo_instances[uid] = smo
        for source in smo.sources:
            source.outgoing.append(smo)
        for target in smo.targets:
            if target.incoming is not None:
                raise CatalogError(
                    f"table version {target!r} already has an incoming SMO"
                )
            target.incoming = smo
        return smo

    def add_schema_version(self, version: SchemaVersion) -> None:
        if version.name in self.schema_versions:
            raise CatalogError(f"schema version {version.name!r} already exists")
        self.schema_versions[version.name] = version

    # -- lookups ----------------------------------------------------------

    def schema_version(self, name: str) -> SchemaVersion:
        try:
            version = self.schema_versions[name]
        except KeyError:
            raise CatalogError(f"unknown schema version {name!r}") from None
        if version.dropped:
            raise CatalogError(f"schema version {name!r} has been dropped")
        return version

    def active_versions(self) -> list[SchemaVersion]:
        return [v for v in self.schema_versions.values() if not v.dropped]

    def all_smos(self) -> list[SmoInstance]:
        return [self.smo_instances[uid] for uid in sorted(self.smo_instances)]

    def evolution_smos(self) -> list[SmoInstance]:
        """All non-CREATE-TABLE SMOs (the ones with a materialization choice)."""
        return [smo for smo in self.all_smos() if not smo.is_initial]

    # -- integrity ----------------------------------------------------------

    def check_acyclic(self) -> None:
        """The genealogy must be a DAG (the paper relies on this for both
        trigger cascades and the formal evaluation)."""
        import graphlib

        sorter: graphlib.TopologicalSorter[int] = graphlib.TopologicalSorter()
        for smo in self.smo_instances.values():
            for target in smo.targets:
                sorter.add(target.uid, *(source.uid for source in smo.sources))
        try:
            sorter.prepare()
        except graphlib.CycleError as exc:  # pragma: no cover - defensive
            raise CatalogError(f"cyclic genealogy: {exc.args[1]}") from None

    # -- garbage collection -------------------------------------------------

    def drop_schema_version(self, name: str) -> list[SmoInstance]:
        """Mark a schema version dropped and return SMO instances that are no
        longer part of an evolution connecting two remaining versions.

        The data itself is kept as long as any remaining version needs it;
        SMOs are removed from the catalog only when they no longer connect
        remaining versions (paper, Section 3).
        """
        version = self.schema_version(name)
        version.dropped = True
        needed: set[int] = set()
        for active in self.active_versions():
            for tv in active.tables.values():
                cursor = tv
                while cursor.incoming is not None and not cursor.incoming.is_initial:
                    needed.add(cursor.incoming.uid)
                    # walk further along every source
                    smo = cursor.incoming
                    if not smo.sources:
                        break
                    cursor = smo.sources[0]
                    for extra in smo.sources[1:]:
                        walker = extra
                        while walker.incoming is not None and not walker.incoming.is_initial:
                            needed.add(walker.incoming.uid)
                            if not walker.incoming.sources:
                                break
                            walker = walker.incoming.sources[0]
        unneeded = [
            smo
            for smo in self.evolution_smos()
            if smo.uid not in needed and smo.evolution == name
        ]
        return unneeded
