"""Tables: multisets of rows keyed by the InVerDa identifier ``p``.

The paper gives every table an attribute ``p``, a system-managed identifier
that (a) uniquely identifies a tuple across all schema versions and (b)
reconciles SQL multiset semantics with Datalog set semantics. We store it as
the dictionary key rather than as a visible column.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.errors import AccessError
from repro.relational.schema import TableSchema
from repro.relational.types import Value

Row = tuple
Key = int


@dataclass
class Table:
    """Mutable storage for one physical table (data or auxiliary)."""

    schema: TableSchema
    _rows: dict[Key, Row] = field(default_factory=dict)

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Key) -> bool:
        return key in self._rows

    def __iter__(self) -> Iterator[tuple[Key, Row]]:
        return iter(self._rows.items())

    def keys(self) -> Iterable[Key]:
        return self._rows.keys()

    def get(self, key: Key) -> Row | None:
        return self._rows.get(key)

    def require(self, key: Key) -> Row:
        try:
            return self._rows[key]
        except KeyError:
            raise AccessError(f"table {self.name!r} has no row with id {key}") from None

    # -- mutation ------------------------------------------------------------

    def insert(self, key: Key, row: Row) -> None:
        if key in self._rows:
            raise AccessError(f"duplicate row id {key} in table {self.name!r}")
        self._rows[key] = self.schema.row_from_sequence(row)

    def upsert(self, key: Key, row: Row) -> None:
        self._rows[key] = self.schema.row_from_sequence(row)

    def update(self, key: Key, row: Row) -> Row:
        old = self.require(key)
        self._rows[key] = self.schema.row_from_sequence(row)
        return old

    def delete(self, key: Key) -> Row:
        try:
            return self._rows.pop(key)
        except KeyError:
            raise AccessError(f"table {self.name!r} has no row with id {key}") from None

    def discard(self, key: Key) -> Row | None:
        return self._rows.pop(key, None)

    def clear(self) -> None:
        self._rows.clear()

    def replace_all(self, rows: Mapping[Key, Row]) -> None:
        self._rows = {key: self.schema.row_from_sequence(row) for key, row in rows.items()}

    # -- derived views -------------------------------------------------------

    def as_dict(self) -> dict[Key, Row]:
        return dict(self._rows)

    def as_set(self) -> frozenset[tuple[Key, Row]]:
        return frozenset(self._rows.items())

    def rows_as_mappings(self) -> list[dict[str, Value]]:
        return [self.schema.row_to_mapping(row) for row in self._rows.values()]

    def items_as_mappings(self) -> list[tuple[Key, dict[str, Value]]]:
        return [(key, self.schema.row_to_mapping(row)) for key, row in self._rows.items()]

    def copy(self, *, schema: TableSchema | None = None) -> "Table":
        clone = Table(schema or self.schema)
        clone._rows = dict(self._rows)
        return clone

    def data_equal(self, other: "Table") -> bool:
        """Compare contents only (schema names may differ between versions)."""
        return self._rows == other._rows
