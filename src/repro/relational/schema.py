"""Table schemas: ordered, typed column lists with structural operations.

Schemas are immutable; every evolution step (rename, project, concat...)
produces a new schema object. This mirrors how SMOs derive target table
versions from source table versions without mutating them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.errors import SchemaError
from repro.relational.types import DataType, Value, coerce_value
from repro.util.naming import check_identifier


@dataclass(frozen=True)
class Column:
    name: str
    dtype: DataType = DataType.ANY

    def __post_init__(self) -> None:
        check_identifier(self.name, what="column name")

    def renamed(self, name: str) -> "Column":
        return Column(name, self.dtype)

    def to_sql(self) -> str:
        type_sql = self.dtype.to_sql()
        return f"{self.name} {type_sql}".strip()


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of named, typed columns belonging to table ``name``."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        check_identifier(self.name, what="table name")
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(column.name)

    @classmethod
    def of(cls, name: str, columns: Sequence[str | Column | tuple[str, DataType]]) -> "TableSchema":
        """Convenience constructor accepting names, (name, type) pairs, or Columns."""
        built: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                built.append(spec)
            elif isinstance(spec, tuple):
                built.append(Column(spec[0], spec[1]))
            else:
                built.append(Column(spec))
        return cls(name, tuple(built))

    # -- lookups ----------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def index_of(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    # -- structural operations -------------------------------------------

    def with_name(self, name: str) -> "TableSchema":
        return TableSchema(name, self.columns)

    def rename_column(self, old: str, new: str) -> "TableSchema":
        index = self.index_of(old)
        if self.has_column(new):
            raise SchemaError(f"table {self.name!r} already has a column {new!r}")
        columns = list(self.columns)
        columns[index] = columns[index].renamed(new)
        return TableSchema(self.name, tuple(columns))

    def add_column(self, column: Column, position: int | None = None) -> "TableSchema":
        if self.has_column(column.name):
            raise SchemaError(f"table {self.name!r} already has a column {column.name!r}")
        columns = list(self.columns)
        if position is None:
            columns.append(column)
        else:
            columns.insert(position, column)
        return TableSchema(self.name, tuple(columns))

    def drop_column(self, name: str) -> "TableSchema":
        index = self.index_of(name)
        columns = list(self.columns)
        del columns[index]
        if not columns:
            raise SchemaError(f"cannot drop the last column of table {self.name!r}")
        return TableSchema(self.name, tuple(columns))

    def project(self, names: Sequence[str], *, table_name: str | None = None) -> "TableSchema":
        columns = tuple(self.column(name) for name in names)
        return TableSchema(table_name or self.name, columns)

    # -- row handling -------------------------------------------------------

    def row_from_mapping(self, values: Mapping[str, Value], *, strict: bool = True) -> tuple:
        """Build a storage tuple from a column->value mapping.

        Missing columns become NULL; unknown columns raise when ``strict``.
        """
        if strict:
            for key in values:
                if not self.has_column(key):
                    raise SchemaError(f"table {self.name!r} has no column {key!r}")
        return tuple(
            coerce_value(values.get(column.name), column.dtype) for column in self.columns
        )

    def row_from_sequence(self, values: Sequence[Value]) -> tuple:
        if len(values) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} values, got {len(values)}"
            )
        return tuple(
            coerce_value(value, column.dtype) for value, column in zip(values, self.columns)
        )

    def row_to_mapping(self, row: Sequence[Value]) -> dict[str, Value]:
        return dict(zip(self.column_names, row))

    def null_row(self) -> tuple:
        return (None,) * self.arity

    def is_null_row(self, row: Iterable[Value]) -> bool:
        return all(value is None for value in row)
