"""Relational-algebra helpers over :class:`~repro.relational.table.Table`.

These operators serve three purposes: they are the building blocks of the
hand-optimized baseline delta code (Section 8.2's "handwritten SQL"), they
give tests an independent way to compute expected results, and they document
the intended semantics of the generated delta code in executable form.

All operators are pure: they take tables (or keyed row dicts) and return new
keyed row dicts, never mutating inputs.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.expr.ast import Expression, is_true
from repro.relational.schema import TableSchema
from repro.relational.table import Key, Row, Table
from repro.relational.types import Value

KeyedRows = dict[Key, Row]


def _rows_of(source: Table | Mapping[Key, Row]) -> Mapping[Key, Row]:
    if isinstance(source, Table):
        return source.as_dict()
    return source


def select(source: Table, predicate: Expression) -> KeyedRows:
    """σ — keep rows where ``predicate`` evaluates to true (SQL semantics)."""
    schema = source.schema
    result: KeyedRows = {}
    for key, row in source:
        if is_true(predicate.evaluate(schema.row_to_mapping(row))):
            result[key] = row
    return result


def reject(source: Table, predicate: Expression) -> KeyedRows:
    """σ¬ — keep rows where ``predicate`` is *not* true (false or NULL).

    This matches Datalog negation of a condition literal: ``¬cR(A)`` holds
    whenever ``cR(A)`` does not evaluate to true.
    """
    schema = source.schema
    result: KeyedRows = {}
    for key, row in source:
        if not is_true(predicate.evaluate(schema.row_to_mapping(row))):
            result[key] = row
    return result


def project(source: Table, names: Sequence[str]) -> KeyedRows:
    """π — project to ``names`` (keyed by the same ``p``)."""
    indices = [source.schema.index_of(name) for name in names]
    return {key: tuple(row[i] for i in indices) for key, row in source}


def extend(source: Table, compute: Callable[[dict[str, Value]], Value]) -> KeyedRows:
    """Append one computed column to every row."""
    schema = source.schema
    return {
        key: row + (compute(schema.row_to_mapping(row)),)
        for key, row in source
    }


def key_join(left: Table | Mapping[Key, Row], right: Table | Mapping[Key, Row]) -> KeyedRows:
    """⋈ₚ — join two keyed row sets on the tuple identifier ``p``."""
    left_rows = _rows_of(left)
    right_rows = _rows_of(right)
    if len(left_rows) > len(right_rows):
        left_rows, right_rows = right_rows, left_rows
        return {key: right_rows[key] + row for key, row in left_rows.items() if key in right_rows}
    return {key: row + right_rows[key] for key, row in left_rows.items() if key in right_rows}


def key_union(*sources: Table | Mapping[Key, Row]) -> KeyedRows:
    """∪ₚ — union of keyed row sets; earlier sources win on key conflicts.

    The precedence mirrors the paper's *primus inter pares* rule for twins
    (Rule 4/5 of the SPLIT semantics: ``R`` wins over ``S``).
    """
    result: KeyedRows = {}
    for source in sources:
        for key, row in _rows_of(source).items():
            result.setdefault(key, row)
    return result


def key_difference(
    left: Table | Mapping[Key, Row], right: Table | Mapping[Key, Row]
) -> KeyedRows:
    """∖ₚ — rows of ``left`` whose key does not occur in ``right``."""
    right_keys = _rows_of(right).keys()
    return {key: row for key, row in _rows_of(left).items() if key not in right_keys}


def natural_key_semijoin(
    left: Table | Mapping[Key, Row], right: Table | Mapping[Key, Row]
) -> KeyedRows:
    """⋉ₚ — rows of ``left`` whose key occurs in ``right``."""
    right_keys = _rows_of(right).keys()
    return {key: row for key, row in _rows_of(left).items() if key in right_keys}


def condition_join(
    left: Table,
    right: Table,
    predicate: Expression,
) -> list[tuple[Key, Key, Row, Row]]:
    """θ-join on an arbitrary condition over the concatenated row.

    Returns ``(left_key, right_key, left_row, right_row)`` matches; the
    caller decides how to mint identifiers for result tuples (Appendix B.6).
    """
    left_schema = left.schema
    right_schema = right.schema
    matches: list[tuple[Key, Key, Row, Row]] = []
    right_rows = list(right)
    for left_key, left_row in left:
        left_mapping = left_schema.row_to_mapping(left_row)
        for right_key, right_row in right_rows:
            combined = dict(left_mapping)
            combined.update(right_schema.row_to_mapping(right_row))
            if is_true(predicate.evaluate(combined)):
                matches.append((left_key, right_key, left_row, right_row))
    return matches


def materialize(schema: TableSchema, rows: Mapping[Key, Row]) -> Table:
    """Build a fresh Table from keyed rows."""
    table = Table(schema)
    table.replace_all(rows)
    return table
