"""Pure-Python relational substrate.

The paper's InVerDa prototype sits on PostgreSQL; this package provides the
equivalent substrate for the reproduction: typed table schemas, tables whose
rows are keyed by the InVerDa-managed identifier ``p`` (unique across all
versions of a tuple), databases with named tables and sequences, a small
relational-algebra toolkit, and snapshot/diff utilities used by migration
tests.
"""

from repro.relational.database import Database
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType, coerce_value, infer_type

__all__ = [
    "Database",
    "Table",
    "TableSchema",
    "Column",
    "DataType",
    "coerce_value",
    "infer_type",
]
