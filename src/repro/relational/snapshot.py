"""Database snapshots and diffs.

Used by migration tests to prove that a ``MATERIALIZE`` run changes *where*
data lives without changing *what* any schema version sees, and by the
transaction layer to roll back failed write batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.database import Database
from repro.relational.table import Key, Row


@dataclass(frozen=True)
class TableDiff:
    added: dict[Key, Row] = field(default_factory=dict)
    removed: dict[Key, Row] = field(default_factory=dict)
    changed: dict[Key, tuple[Row, Row]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.added or self.removed or self.changed)


@dataclass(frozen=True)
class DatabaseDiff:
    created_tables: tuple[str, ...]
    dropped_tables: tuple[str, ...]
    table_diffs: dict[str, TableDiff]

    @property
    def empty(self) -> bool:
        return (
            not self.created_tables
            and not self.dropped_tables
            and all(diff.empty for diff in self.table_diffs.values())
        )


def diff_databases(before: Database, after: Database) -> DatabaseDiff:
    before_names = set(before.tables)
    after_names = set(after.tables)
    created = tuple(sorted(after_names - before_names))
    dropped = tuple(sorted(before_names - after_names))
    table_diffs: dict[str, TableDiff] = {}
    for name in sorted(before_names & after_names):
        old_rows = before.table(name).as_dict()
        new_rows = after.table(name).as_dict()
        added = {key: row for key, row in new_rows.items() if key not in old_rows}
        removed = {key: row for key, row in old_rows.items() if key not in new_rows}
        changed = {
            key: (old_rows[key], new_rows[key])
            for key in old_rows.keys() & new_rows.keys()
            if old_rows[key] != new_rows[key]
        }
        table_diffs[name] = TableDiff(added=added, removed=removed, changed=changed)
    return DatabaseDiff(created, dropped, table_diffs)
