"""Databases: named tables plus system-managed sequences.

A :class:`Database` holds the *physical* side of an InVerDa installation:
data tables for materialized table versions, auxiliary tables for the
materialized side of each SMO, and the sequences backing both the global
tuple identifier ``p`` and the per-SMO identity functions ``id_T(B)`` of the
FK/condition variants of DECOMPOSE and JOIN.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.relational.schema import TableSchema
from repro.relational.table import Table

ROW_ID_SEQUENCE = "p"


@dataclass
class Database:
    tables: dict[str, Table] = field(default_factory=dict)
    sequences: dict[str, int] = field(default_factory=dict)

    # -- table management --------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self.tables[schema.name] = table
        return table

    def ensure_table(self, schema: TableSchema) -> Table:
        existing = self.tables.get(schema.name)
        if existing is not None:
            return existing
        return self.create_table(schema)

    def drop_table(self, name: str) -> None:
        try:
            del self.tables[name]
        except KeyError:
            raise SchemaError(f"table {name!r} does not exist") from None

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    # -- sequences ---------------------------------------------------------

    def next_value(self, sequence: str = ROW_ID_SEQUENCE) -> int:
        value = self.sequences.get(sequence, 0) + 1
        self.sequences[sequence] = value
        return value

    def peek_value(self, sequence: str = ROW_ID_SEQUENCE) -> int:
        return self.sequences.get(sequence, 0)

    def advance_to(self, sequence: str, value: int) -> None:
        if value > self.sequences.get(sequence, 0):
            self.sequences[sequence] = value

    # -- whole-database operations ------------------------------------------

    def clone(self) -> "Database":
        clone = Database(sequences=dict(self.sequences))
        clone.tables = {name: table.copy() for name, table in self.tables.items()}
        return clone

    def total_rows(self, names: Iterable[str] | None = None) -> int:
        selected = self.tables.values() if names is None else (self.table(n) for n in names)
        return sum(len(table) for table in selected)
