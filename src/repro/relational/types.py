"""Column data types and value coercion.

The type system is deliberately small (the paper's evolution language is
type-agnostic): ``INTEGER``, ``REAL``, ``TEXT``, ``BOOLEAN``, and the
wildcard ``ANY``. ``None`` plays SQL ``NULL`` and is a member of every type.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import SchemaError

Value = Any


class DataType(enum.Enum):
    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    ANY = "ANY"

    @classmethod
    def parse(cls, name: str) -> "DataType":
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOL": cls.BOOLEAN,
            "BOOLEAN": cls.BOOLEAN,
            "ANY": cls.ANY,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise SchemaError(f"unknown data type {name!r}") from None

    def to_sql(self) -> str:
        if self is DataType.ANY:
            return ""  # SQLite columns may be typeless
        if self is DataType.BOOLEAN:
            return "INTEGER"  # SQLite convention
        return self.value


def coerce_value(value: Value, dtype: DataType) -> Value:
    """Validate/convert ``value`` for a column of type ``dtype``.

    Follows permissive SQL-ish coercion: ints are accepted for REAL columns,
    bools for INTEGER columns. Raises :class:`SchemaError` on a clear type
    mismatch instead of silently storing junk.
    """
    if value is None or dtype is DataType.ANY:
        return value
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise SchemaError(f"cannot store {value!r} in an INTEGER column")
    if dtype is DataType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        raise SchemaError(f"cannot store {value!r} in a REAL column")
    if dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
        raise SchemaError(f"cannot store {value!r} in a TEXT column")
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise SchemaError(f"cannot store {value!r} in a BOOLEAN column")
    raise SchemaError(f"unhandled data type {dtype}")  # pragma: no cover


def infer_type(value: Value) -> DataType:
    """Best-effort type inference for schema-less inputs."""
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    if isinstance(value, str):
        return DataType.TEXT
    return DataType.ANY
