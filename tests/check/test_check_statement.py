"""The ``CHECK <bidel>`` SQL statement on the in-process transport:
parsing, result shape, and its no-side-effects contract."""

from __future__ import annotations

import pytest

from repro.core.engine import InVerDa
from repro.errors import ProgrammingError
from repro.sql.ast import Check
from repro.sql.connection import connect
from repro.sql.parser import parse_statement


@pytest.fixture
def engine():
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b INTEGER);"
    )
    return engine


class TestParsing:
    def test_check_wraps_the_script_verbatim(self):
        statement = parse_statement(
            "CHECK CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE R;"
        )
        assert isinstance(statement, Check)
        assert statement.script == (
            "CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE R;"
        )

    def test_check_materialize(self):
        statement = parse_statement("CHECK MATERIALIZE v1;")
        assert isinstance(statement, Check)
        assert statement.script == "MATERIALIZE v1;"

    def test_check_multiline_script(self):
        statement = parse_statement(
            "CHECK CREATE SCHEMA VERSION v2 FROM v1 WITH\n"
            "  DROP TABLE R;"
        )
        assert isinstance(statement, Check)
        assert statement.script.startswith("CREATE SCHEMA VERSION v2")
        assert "DROP TABLE R" in statement.script

    def test_check_rejects_dml(self):
        with pytest.raises(ProgrammingError, match="CHECK applies to BiDEL"):
            parse_statement("CHECK SELECT * FROM R")


class TestExecution:
    def test_result_shape(self, engine):
        cursor = connect(engine, "v1").cursor()
        cursor.execute(
            "CHECK CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE R;"
        )
        assert [d[0] for d in cursor.description] == [
            "code", "severity", "object", "message",
        ]
        rows = cursor.fetchall()
        assert rows and rows[0][0] == "RPC204"
        assert rows[0][1] == "warning"

    def test_clean_script_yields_no_rows(self, engine):
        cursor = connect(engine, "v1").cursor()
        cursor.execute(
            "CHECK CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "ADD COLUMN c AS a + b INTO R;"
        )
        assert cursor.fetchall() == []

    def test_executemany_rejects_check(self, engine):
        cursor = connect(engine, "v1").cursor()
        with pytest.raises(ProgrammingError):
            cursor.executemany("CHECK MATERIALIZE v1;", [()])


class TestNoSideEffects:
    def test_catalog_untouched(self, engine):
        connection = connect(engine, "v1")
        generation = engine.catalog_generation
        fingerprint = engine.catalog_fingerprint()
        connection.cursor().execute(
            "CHECK CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE R;"
        )
        assert engine.catalog_generation == generation
        assert engine.catalog_fingerprint() == fingerprint
        assert sorted(engine.version_names()) == ["v1"]

    def test_plan_cache_not_polluted(self, engine):
        connection = connect(engine, "v1")
        before = engine.plan_cache.stats()["size"]
        connection.cursor().execute("CHECK MATERIALIZE v1;")
        assert engine.plan_cache.stats()["size"] == before

    def test_workload_counts_check_but_excludes_it_from_advice(self, engine):
        connection = connect(engine, "v1")
        connection.cursor().execute("CHECK MATERIALIZE v1;")
        counts = engine.workload._counter.values()
        assert counts.get(("v1", "check"), 0) == 1
        # Introspection must not skew the materialization advisor.
        assert engine.workload.reads.get("v1", 0) == 0
        assert engine.workload.writes.get("v1", 0) == 0

    def test_last_check_summary(self, engine):
        connection = connect(engine, "v1")
        connection.cursor().execute(
            "CHECK CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE R;"
        )
        assert engine.last_check["scope"] == "check-statement"
        assert engine.last_check["warnings"] == 1
