"""Regression: the trigger condition renderer must rewrite column
references token-wise, never by raw substring replacement.

The old ``str.replace`` pass corrupted conditions two ways: a column
name inside a longer identifier (``id`` in ``uid`` → ``uNEW.id``), and a
column name inside a string literal.  The verifier's RPC102 pass is the
safety net that would have caught the corrupted output
(tests/check/test_delta_verifier.py::test_unknown_qualifier_rpc102).
"""

from __future__ import annotations

from repro.datalog.ast import CondLit, Var
from repro.expr.parser import parse_expression
from repro.sqlgen.triggers import _render_condition


def render(expression: str, columns: list[str], row_var: str = "NEW",
           *, positive: bool = True) -> str:
    literal = CondLit(
        "c",
        parse_expression(expression),
        tuple((name, Var(name.upper())) for name in columns),
        positive=positive,
    )
    return _render_condition(literal, row_var)


class TestTokenWiseRewrite:
    def test_substring_column_not_corrupted(self):
        # The original defect: replacing `id` first turned `uid` into
        # `uNEW.id`.
        assert render("uid > id", ["id", "uid"]) == "(NEW.uid > NEW.id)"

    def test_order_of_columns_is_irrelevant(self):
        assert render("uid > id", ["uid", "id"]) == "(NEW.uid > NEW.id)"

    def test_prefix_column_pair(self):
        assert render("a + ab", ["a", "ab"], "OLD") == "(OLD.a + OLD.ab)"

    def test_string_literal_untouched(self):
        assert render("name = 'id'", ["name", "id"]) == "(NEW.name = 'id')"

    def test_negated_condition(self):
        assert render("v >= 10", ["v"], positive=False) == "NOT ((NEW.v >= 10))"

    def test_no_columns(self):
        assert render("1 = 1", []) == "(1 = 1)"

    def test_column_used_twice(self):
        assert render("a = a", ["a"]) == "(NEW.a = NEW.a)"
