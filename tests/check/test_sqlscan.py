"""Unit tests for the delta-code SQL scanner (repro.check.sqlscan)."""

from __future__ import annotations

from repro.check.sqlscan import (
    SUBQUERY,
    scan_statement,
    tokenize_sql,
    unquoted_occurrence,
)


class TestTokenizer:
    def test_kinds(self):
        tokens = tokenize_sql("SELECT a, \"or der\" FROM t WHERE x = 'it''s' + 1.5")
        kinds = [t.kind for t in tokens]
        assert "string" in kinds and "qident" in kinds and "number" in kinds

    def test_quoted_identifier_unquotes(self):
        (token,) = tokenize_sql('"a""b"')
        assert token.kind == "qident"
        assert token.name == 'a"b'
        assert token.upper == ""  # quoted identifiers are never keywords


class TestViewScan:
    def test_simple_view(self):
        scan = scan_statement(
            'CREATE VIEW "v0__R" AS\nSELECT p, a FROM "d__0__R"'
        )
        assert scan.kind == "view"
        assert scan.name == "v0__R"
        assert scan.table_refs == ["d__0__R"]

    def test_aliases_and_column_refs(self):
        scan = scan_statement(
            "CREATE VIEW v AS SELECT f0.p AS p, f1.b AS b "
            "FROM t0 f0, t1 f1 WHERE f1.p = f0.p"
        )
        assert scan.aliases == {"f0": {"t0"}, "f1": {"t1"}}
        assert ("f1", "b") in scan.column_refs

    def test_union_branches_reuse_aliases(self):
        scan = scan_statement(
            "CREATE VIEW v AS SELECT t0.a FROM x t0 "
            "UNION SELECT t0.a FROM y t0"
        )
        assert scan.aliases["t0"] == {"x", "y"}

    def test_subquery_alias_is_opaque(self):
        scan = scan_statement(
            "CREATE VIEW v AS SELECT d.a FROM (SELECT NULL AS a WHERE 0) d"
        )
        assert SUBQUERY in scan.aliases["d"]

    def test_subquery_tables_still_collected(self):
        scan = scan_statement(
            "CREATE VIEW v AS SELECT 1 FROM t WHERE EXISTS "
            "(SELECT 1 FROM inner_t n WHERE n.p = t.p)"
        )
        assert "inner_t" in scan.table_refs


class TestTriggerScan:
    def test_header_and_body(self):
        scan = scan_statement(
            'CREATE TRIGGER "tg__0__insert" INSTEAD OF INSERT ON "v0__R"\n'
            "BEGIN\n"
            '  INSERT OR REPLACE INTO "d__0__R" (p, a) VALUES (NEW.p, NEW.a);\n'
            "END"
        )
        assert scan.kind == "trigger"
        assert scan.name == "tg__0__insert"
        assert scan.on_view == "v0__R"
        assert scan.operation == "INSERT"
        assert "d__0__R" in scan.table_refs
        assert ("NEW", "a") in scan.column_refs


class TestDdlScan:
    def test_create_table_columns(self):
        scan = scan_statement(
            'CREATE TABLE IF NOT EXISTS "aux__1__B" '
            "(p INTEGER PRIMARY KEY, a INTEGER)"
        )
        assert scan.kind == "table"
        assert scan.name == "aux__1__B"
        assert scan.columns_defined == ("p", "a")

    def test_create_index(self):
        scan = scan_statement(
            'CREATE INDEX IF NOT EXISTS "ix__1__B__a" ON "aux__1__B" (a)'
        )
        assert scan.kind == "index"
        assert scan.table_refs == ["aux__1__B"]
        assert ("aux__1__B", "a") in scan.column_refs


class TestUnquotedOccurrence:
    def test_bare_hit(self):
        assert unquoted_occurrence("SELECT alter FROM t", "alter")

    def test_quoted_miss(self):
        assert not unquoted_occurrence('SELECT "alter" FROM t', "alter")

    def test_string_literal_miss(self):
        assert not unquoted_occurrence("SELECT 'alter' FROM t", "alter")

    def test_substring_never_matches(self):
        assert not unquoted_occurrence("SELECT alteration FROM t", "alter")

    def test_case_insensitive(self):
        assert unquoted_occurrence("SELECT ALTER FROM t", "alter")
