"""Property test: the delta-code verifier must run clean over the
differential suite's randomized SMO chains, under every valid
materialization, for both view emissions.

This is the other half of the seeded-defect suite's contract: defects
are flagged (test_delta_verifier), and correct generator output is never
flagged — no matter which chain or which physical layout produced it.
"""

from __future__ import annotations

import pytest

from repro.catalog.materialization import enumerate_valid_materializations
from repro.check.delta import verify_delta_code
from repro.core.engine import InVerDa
from tests.backend.test_differential import CHAINS


def _build(chain_name: str) -> InVerDa:
    create, _loaders, evolutions = CHAINS[chain_name]
    engine = InVerDa()
    engine.execute(f"CREATE SCHEMA VERSION v1 WITH {create};")
    for index, step in enumerate(evolutions, start=2):
        script, source = step if isinstance(step, tuple) else (step, f"v{index - 1}")
        engine.execute(
            f"CREATE SCHEMA VERSION v{index} FROM {source} WITH {script};"
        )
    return engine


@pytest.mark.parametrize("chain_name", sorted(CHAINS))
def test_verifier_clean_over_chain_and_materializations(chain_name):
    engine = _build(chain_name)
    schemas = enumerate_valid_materializations(engine.genealogy)
    assert schemas, "every chain must admit at least one materialization"
    for schema in schemas:
        engine.apply_materialization(schema)
        for flatten in (True, False):
            findings = verify_delta_code(engine, flatten=flatten)
            assert findings == [], (
                f"{chain_name}, flatten={flatten}, "
                f"materialization={sorted(s.uid for s in schema)}: "
                + "; ".join(d.render() for d in findings)
            )
