"""BiDEL pre-flight analysis: every RPC2xx diagnostic has a triggering
script, and sound chains pass clean."""

from __future__ import annotations

import pytest

from repro.check.preflight import preflight_script
from repro.core.engine import InVerDa


@pytest.fixture
def engine():
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b INTEGER);"
    )
    return engine


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestParseFailure:
    def test_rpc200(self, engine):
        findings = preflight_script(engine, "CREATE SCHEMA VERSION !!!")
        assert codes(findings) == ["RPC200"]
        assert findings[0].severity == "error"


class TestCollisions:
    def test_version_collision_rpc201(self, engine):
        findings = preflight_script(
            engine, "CREATE SCHEMA VERSION v1 WITH CREATE TABLE X(a INTEGER);"
        )
        assert "RPC201" in codes(findings)

    def test_table_collision_rpc201(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH CREATE TABLE R(x INTEGER);",
        )
        assert "RPC201" in codes(findings)

    def test_column_collision_rpc201(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN a AS b INTO R;",
        )
        assert "RPC201" in codes(findings)


class TestDanglingReferences:
    def test_unknown_source_version_rpc202(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM nope WITH CREATE TABLE X(a INTEGER);",
        )
        assert "RPC202" in codes(findings)

    def test_dropped_version_rpc202(self, engine):
        findings = preflight_script(
            engine,
            "DROP SCHEMA VERSION v1;\n"
            "CREATE SCHEMA VERSION v2 FROM v1 WITH CREATE TABLE X(a INTEGER);",
        )
        assert "RPC202" in codes(findings)

    def test_dropped_table_rpc202(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "DROP TABLE R; RENAME COLUMN a IN R TO z;",
        )
        assert "RPC202" in codes(findings)

    def test_unknown_column_rpc203(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS zz + 1 INTO R;",
        )
        assert "RPC203" in codes(findings)

    def test_materialize_unknown_version_rpc202(self, engine):
        findings = preflight_script(engine, "MATERIALIZE nope;")
        assert codes(findings) == ["RPC202"]


class TestInformationLoss:
    def test_drop_table_rpc204(self, engine):
        findings = preflight_script(
            engine, "CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE R;"
        )
        assert "RPC204" in codes(findings)
        assert all(d.severity == "warning" for d in findings)

    def test_drop_column_rpc204(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH DROP COLUMN b FROM R DEFAULT 0;",
        )
        assert "RPC204" in codes(findings)

    def test_inner_join_rpc204(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "DECOMPOSE TABLE R INTO S(a), T(b) ON PK;\n"
            "CREATE SCHEMA VERSION v3 FROM v2 WITH "
            "JOIN TABLE S, T INTO U ON PK;",
        )
        assert "RPC204" in codes(findings)

    def test_single_target_split_rpc204(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH SPLIT TABLE R INTO Hot WITH a = 1;",
        )
        assert "RPC204" in codes(findings)


class TestPartitionAnalysis:
    def test_overlap_rpc205(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "SPLIT TABLE R INTO S1 WITH a >= 1, S2 WITH a <= 1;",
        )
        assert "RPC205" in codes(findings)

    def test_gap_rpc206(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "SPLIT TABLE R INTO S1 WITH a > 1, S2 WITH a < 1;",
        )
        assert "RPC206" in codes(findings)

    def test_clean_partition(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "SPLIT TABLE R INTO S1 WITH a >= 1, S2 WITH a < 1;",
        )
        assert "RPC205" not in codes(findings)
        assert "RPC206" not in codes(findings)

    def test_sql_modulo_gap_is_caught(self, engine):
        """``a % 2 = 0 / = 1`` looks total but gaps at negative values
        under SQL remainder semantics (sign of the dividend) — exactly
        the class of subtle partition bug the sample grid probes for."""
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "SPLIT TABLE R INTO S1 WITH a % 2 = 0, S2 WITH a % 2 = 1;",
        )
        assert "RPC206" in codes(findings)

    def test_merge_gap_is_not_loss(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "DROP TABLE R; "
            "CREATE TABLE A(x INTEGER); CREATE TABLE B(x INTEGER);\n"
            "CREATE SCHEMA VERSION v3 FROM v2 WITH "
            "MERGE TABLE A (x > 1), B (x < 1) INTO C;",
        )
        gap = [d for d in findings if d.code == "RPC206"]
        assert gap and "lost" not in gap[0].message


class TestCleanChains:
    def test_tasky_like_chain_is_quiet(self, engine):
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "RENAME COLUMN a IN R TO aa; ADD COLUMN c AS aa + b INTO R;",
        )
        assert findings == []

    def test_no_engine_means_empty_catalog(self):
        findings = preflight_script(
            None, "CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a INTEGER);"
        )
        assert findings == []

    def test_best_effort_continues_after_error(self, engine):
        """A broken statement must not drown later, independent problems."""
        findings = preflight_script(
            engine,
            "CREATE SCHEMA VERSION v2 FROM nope WITH CREATE TABLE X(a INTEGER);\n"
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Y(a INTEGER);",
        )
        assert {"RPC202", "RPC201"} <= set(codes(findings))
