"""The project lint (RPC3xx): each rule fires on a seeded violation,
suppressions work, and the shipped codebase itself is clean."""

from __future__ import annotations

import textwrap

from repro.check.lint import run_project_lint


def lint_source(tmp_path, source: str, relname: str = "pkg/mod.py"):
    path = tmp_path / relname
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_project_lint(tmp_path)


class TestSqlFstrings:
    def test_sql_fstring_flagged_rpc301(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def bad(name):
                return f"SELECT * FROM {name}"
            ''',
        )
        assert [d.code for d in findings] == ["RPC301"]

    def test_error_message_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def ok(name):
                return f"cannot SELECT from {name}: no such table"
            ''',
        )
        assert findings == []

    def test_builder_packages_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def emit(name):
                return f"SELECT * FROM {name}"
            ''',
            relname="backend/emit2.py",
        )
        assert findings == []

    def test_no_interpolation_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            SQL = f"SELECT 1"
            ''',
        )
        assert findings == []


class TestGenerationLock:
    def test_unlocked_mutation_flagged_rpc302(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def bump(engine):
                engine.catalog_generation += 1
            ''',
        )
        assert [d.code for d in findings] == ["RPC302"]

    def test_locked_mutation_ok(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def bump(engine):
                with engine.catalog_lock.write_locked():
                    engine.catalog_generation += 1
            ''',
        )
        assert findings == []

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def bump(engine):
                engine.catalog_generation = 0  # repro-lint: allow(RPC302)
            ''',
        )
        assert findings == []

    def test_suppression_on_previous_line(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def bump(engine):
                # repro-lint: allow(RPC302)
                engine.catalog_generation = 0
            ''',
        )
        assert findings == []


class TestMetricsRegistry:
    def test_direct_family_instantiation_flagged_rpc303(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def make():
                return Counter("x", "help")
            ''',
        )
        assert [d.code for d in findings] == ["RPC303"]

    def test_series_access_flagged_rpc303(self, tmp_path):
        findings = lint_source(
            tmp_path,
            '''
            def poke(metric):
                return metric._series
            ''',
        )
        assert [d.code for d in findings] == ["RPC303"]


class TestShippedCodebase:
    def test_repro_package_is_clean(self):
        findings = run_project_lint()
        assert findings == [], "\n".join(d.render() for d in findings)
