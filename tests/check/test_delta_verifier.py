"""The delta-code verifier: clean on generator output, and every seeded
defect class flagged with its stable diagnostic code."""

from __future__ import annotations

import pytest

from repro.backend import codegen
from repro.check.delta import verify_and_record, verify_delta_code
from repro.check.diagnostics import error_count
from repro.core.engine import InVerDa
from repro.workloads.tasky import build_tasky


@pytest.fixture
def engine():
    """Two versions over one table; the second column needs quoting
    (``alter`` is a SQL keyword) so the quoting pass has a target."""
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, alter INTEGER);"
    )
    engine.execute(
        "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + 1 INTO R;"
    )
    return engine


def _emission(engine, *, flatten=True):
    return (
        codegen.view_statements(engine, flatten=flatten),
        codegen.trigger_statements(engine),
    )


class TestCleanOutput:
    def test_clean_on_generator_output(self, engine):
        for flatten in (True, False):
            assert verify_delta_code(engine, flatten=flatten) == []

    def test_clean_on_tasky(self):
        scenario = build_tasky(50, seed=11)
        for flatten in (True, False):
            findings = verify_delta_code(scenario.engine, flatten=flatten)
            assert findings == [], [d.render() for d in findings]

    def test_clean_when_flattening_prunes_a_dead_join(self):
        """A DROP COLUMN downstream of a SPLIT leaves the flattened
        emission reading *fewer* base tables than the nested composition:
        the join that only contributed the dropped column is dead in the
        inlined query but still referenced through the intermediate
        views.  That is legal pruning, not a defect (regression for a
        soak-found false positive; both emissions are differentially
        identical for this catalog)."""
        from repro.workloads.orders import build_orders

        engine = build_orders(1, 1, 1, versions=3).engine
        for script in [
            "CREATE SCHEMA VERSION s2 FROM v1 WITH "
            "RENAME COLUMN qty IN Orders TO c1;",
            "CREATE SCHEMA VERSION s10 FROM v3 WITH "
            "RENAME COLUMN status IN Closed TO c9;",
            "CREATE SCHEMA VERSION s11 FROM s10 WITH "
            "DROP COLUMN total FROM Open DEFAULT 0;",
        ]:
            engine.execute(script)
        findings = verify_delta_code(engine)
        assert findings == [], [d.render() for d in findings]


class TestSeededDefects:
    """Mutate known-good delta code; each defect class must be flagged
    with the right code."""

    def test_dangling_column_rpc102(self, engine):
        views, triggers = _emission(engine)
        views = [s.replace("f3.a AS a", "f3.zz AS a") for s in views]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        assert [d.code for d in findings] == ["RPC102"]
        assert findings[0].severity == "error"

    def test_reference_to_dropped_table_rpc101(self, engine):
        views, triggers = _emission(engine)
        views = [s.replace("d__0__R", "d__9__GONE") for s in views]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        assert {d.code for d in findings} == {"RPC101"}

    def test_missing_trigger_operation_rpc104(self, engine):
        views, triggers = _emission(engine)
        triggers = [t for t in triggers if "tg__0__delete" not in t]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        assert [d.code for d in findings] == ["RPC104"]
        assert "DELETE" in findings[0].message

    def test_unquoted_identifier_rpc105(self, engine):
        views, triggers = _emission(engine)
        views = [s.replace('"alter"', "alter") for s in views]
        triggers = [t.replace('"alter"', "alter") for t in triggers]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        assert findings and {d.code for d in findings} == {"RPC105"}
        assert all(d.severity == "warning" for d in findings)
        assert error_count(findings) == 0

    def test_view_cycle_rpc103(self, engine):
        views = codegen.view_statements(engine, flatten=False)
        triggers = codegen.trigger_statements(engine)
        assert "v0__R" in views[1]  # nested emission: v1 reads v0
        views = [views[0].replace("d__0__R", "v1__R")] + views[1:]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        assert "RPC103" in {d.code for d in findings}

    def test_flat_reading_extra_base_table_rpc106(self, engine, monkeypatch):
        """Pruning is legal; the converse — the flattened program
        answering from a table the nested composition never reads —
        is the defect RPC106 exists for."""
        from repro.check import delta

        real = codegen.view_statements

        def spiked(eng, *, flatten=True):
            statements = list(real(eng, flatten=flatten))
            if flatten:
                statements.append(
                    "CREATE VIEW spiked AS SELECT a FROM phantom_table"
                )
            else:
                statements.append("CREATE VIEW spiked AS SELECT 1 AS a")
            return statements

        monkeypatch.setattr(codegen, "view_statements", spiked)
        findings = delta._check_emission_agreement(engine)
        assert [d.code for d in findings] == ["RPC106"]
        assert "phantom_table" in findings[0].message

    def test_unknown_qualifier_rpc102(self, engine):
        """The corruption class the old trigger renderer could produce
        (``uid`` rewritten into ``uNEW.id``) resolves to an unknown
        qualifier — the verifier must flag it."""
        views, triggers = _emission(engine)
        triggers = [t.replace("NEW.a", "uNEW.a") for t in triggers]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        assert findings and {d.code for d in findings} == {"RPC102"}
        assert any("uNEW" in d.message for d in findings)


class TestRecordingSurfaces:
    def test_verify_and_record_sets_last_check(self, engine):
        report = verify_and_record(engine, scope="unit")
        assert report["errors"] == 0
        assert report["diagnostics"] == []
        assert engine.last_check["scope"] == "unit"
        # last_check stays compact: the per-finding list is not embedded.
        assert "diagnostics" not in engine.last_check

    def test_findings_counter(self, engine):
        views, triggers = _emission(engine)
        triggers = [t for t in triggers if "tg__0__delete" not in t]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        from repro.check.diagnostics import record_findings

        record_findings(engine, findings, scope="unit")
        text = engine.metrics.render_prometheus()
        assert "repro_check_findings_total" in text
        assert 'code="RPC104"' in text

    def test_snapshot_carries_last_check(self, engine):
        from repro.obs.snapshot import engine_snapshot

        verify_and_record(engine, scope="unit")
        snapshot = engine_snapshot(engine)
        assert snapshot["check"]["scope"] == "unit"


class TestRecoveryIntegration:
    def test_recovery_runs_verifier(self, tmp_path):
        import repro

        path = str(tmp_path / "checked.db")
        engine = repro.open(path)
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a INTEGER);")
        engine.live_backend.close()

        recovered = repro.open(path)
        try:
            assert recovered.last_check is not None
            assert recovered.last_check["scope"] == "recovery"
            assert recovered.last_check["errors"] == 0
        finally:
            recovered.live_backend.close()


class TestTransitionVerification:
    def test_opt_in_hook_runs_after_ddl(self, tmp_path):
        from repro.backend.sqlite import LiveSqliteBackend

        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine, verify_transitions=True)
        try:
            engine.execute(
                "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS a INTO T;"
            )
            assert engine.last_check["scope"] == "transition:evolution"
            engine.execute("MATERIALIZE v2;")
            assert engine.last_check["scope"] == "transition:materialize"
        finally:
            backend.close()

    def test_off_by_default(self):
        from repro.backend.sqlite import LiveSqliteBackend

        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine)
        try:
            engine.execute(
                "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS a INTO T;"
            )
            assert engine.last_check is None
        finally:
            backend.close()


class TestCli:
    def test_cli_db_mode(self, tmp_path, capsys):
        import repro
        from repro.check.__main__ import run

        path = str(tmp_path / "cli.db")
        engine = repro.open(path)
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a INTEGER);")
        engine.live_backend.close()

        assert run(["--db", path]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_cli_requires_a_mode(self, capsys):
        from repro.check.__main__ import run

        assert run([]) == 2
