import pytest

from repro.bench.harness import ExperimentResult, all_experiments, get_experiment
from repro.errors import ReproError


class TestResultFormatting:
    def test_format_contains_rows_and_notes(self):
        result = ExperimentResult("x", "Title", ("a", "b"))
        result.add("one", 1.5)
        result.note("a note")
        text = result.format()
        assert "Title" in text and "one" in text and "a note" in text

    def test_float_rendering(self):
        result = ExperimentResult("x", "T", ("v",))
        result.add(1234.5678)
        result.add(0.1234)
        text = result.format()
        assert "1234.6" in text and "0.1234" in text


class TestRegistry:
    def test_all_artifacts_registered(self):
        names = {e.name for e in all_experiments()}
        assert {
            "table2", "table3", "table4",
            "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "codegen", "ablation",
        } <= names

    def test_unknown_experiment(self):
        with pytest.raises(ReproError):
            get_experiment("nope")


class TestExperimentSmoke:
    """Tiny-scale smoke runs proving every experiment executes end to end."""

    def test_table2(self):
        result = get_experiment("table2").run()
        assert len(result.rows) == 5

    def test_table3(self):
        result = get_experiment("table3").run()
        assert len(result.rows) == 6

    def test_table4(self):
        result = get_experiment("table4").run(scale=0.001, versions=40)
        assert result.rows[-1][0] == "TOTAL"

    def test_fig8(self):
        result = get_experiment("fig8").run(num_tasks=200, writes=5, repeat=1)
        # 2 materializations x (2 reads + 2 writes) x 3 implementations.
        assert len(result.rows) == 24
        implementations = {row[1] for row in result.rows}
        assert implementations == {
            "BiDEL (memory)",
            "BiDEL (SQLite)",
            "SQL (handwritten)",
        }

    def test_fig9(self):
        result = get_experiment("fig9").run(num_tasks=100, slices=3, ops_per_slice=3)
        assert len(result.rows) == 3

    def test_fig10(self):
        result = get_experiment("fig10").run(num_tasks=100, slices=3, ops_per_slice=3)
        assert len(result.rows) == 4

    def test_fig11(self):
        result = get_experiment("fig11").run(num_tasks=100, ops=3)
        assert len(result.rows) == 15

    def test_fig12(self):
        result = get_experiment("fig12").run(scale=0.001, versions=12, repeat=1)
        assert result.rows

    def test_fig13(self):
        result = get_experiment("fig13").run(sizes=(50,), repeat=1)
        assert len(result.rows) == len(
            __import__("repro.workloads.micro", fromlist=["TWO_SMO_FIRST"]).TWO_SMO_FIRST
        )

    def test_codegen(self):
        result = get_experiment("codegen").run(num_tasks=200)
        assert all(row[1] < 10_000 for row in result.rows)

    def test_ablation(self):
        result = get_experiment("ablation").run(num_tasks=200, writes=5)
        assert len(result.rows) == 4

    def test_cli_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table2" in out
