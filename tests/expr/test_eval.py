"""Evaluation semantics: SQL three-valued logic and NULL propagation."""

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError
from repro.expr import parse_expression
from repro.expr.ast import is_true, negate


def ev(text, **row):
    return parse_expression(text).evaluate(row)


class TestThreeValuedLogic:
    def test_null_comparison_is_null(self):
        assert ev("a = 1", a=None) is None

    def test_and_with_false_short_circuits_null(self):
        assert ev("a = 1 AND b = 2", a=2, b=None) is False

    def test_and_with_null(self):
        assert ev("a = 1 AND b = 2", a=1, b=None) is None

    def test_or_with_true_short_circuits_null(self):
        assert ev("a = 1 OR b = 2", a=1, b=None) is True

    def test_or_with_null(self):
        assert ev("a = 1 OR b = 2", a=2, b=None) is None

    def test_not_null(self):
        assert ev("NOT (a = 1)", a=None) is None

    def test_is_null(self):
        assert ev("a IS NULL", a=None) is True
        assert ev("a IS NULL", a=0) is False

    def test_in_with_null_member(self):
        assert ev("a IN (1, NULL)", a=1) is True
        assert ev("a IN (1, NULL)", a=2) is None

    def test_is_true_only_on_true(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(1)


class TestArithmetic:
    def test_integer_division_truncates(self):
        assert ev("7 / 2") == 3
        assert ev("-7 / 2") == -3

    def test_division_by_zero_is_null(self):
        assert ev("1 / 0") is None
        assert ev("1 % 0") is None

    def test_float_division(self):
        assert ev("7.0 / 2") == 3.5

    def test_modulo_sign_follows_dividend(self):
        assert ev("7 % 3") == 1
        assert ev("-7 % 3") == -1

    def test_concat(self):
        assert ev("a || '-' || b", a="x", b="y") == "x-y"

    def test_concat_null(self):
        assert ev("a || 'x'", a=None) is None


class TestFunctions:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("upper('ab')", "AB"),
            ("lower('AB')", "ab"),
            ("length('abc')", 3),
            ("abs(-5)", 5),
            ("round(2.567, 1)", 2.6),
            ("coalesce(NULL, NULL, 7)", 7),
            ("concat('a', 'b', 'c')", "abc"),
            ("substr('abcdef', 2, 3)", "bcd"),
            ("substr('abcdef', -2)", "ef"),
            ("least(3, 1, 2)", 1),
            ("greatest(3, 1, 2)", 3),
            ("mod(7, 3)", 1),
        ],
    )
    def test_scalar_functions(self, text, expected):
        assert ev(text) == expected

    def test_null_propagation(self):
        assert ev("upper(a)", a=None) is None

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            ev("nosuch(1)")

    def test_unknown_column(self):
        with pytest.raises(ExpressionError):
            ev("missing + 1")


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "h%", True),
            ("hello", "%lo", True),
            ("hello", "h_llo", True),
            ("hello", "H%", True),  # LIKE is case-insensitive like SQLite
            ("hello", "x%", False),
        ],
    )
    def test_like(self, value, pattern, expected):
        assert ev(f"a LIKE '{pattern}'", a=value) is expected


class TestStructural:
    def test_columns(self):
        assert parse_expression("a + b * c").columns() == {"a", "b", "c"}

    def test_rename(self):
        expr = parse_expression("prio = 1 AND author = 'Ann'")
        renamed = expr.rename({"prio": "priority"})
        assert renamed.columns() == {"priority", "author"}
        assert renamed.evaluate({"priority": 1, "author": "Ann"}) is True

    def test_negate_comparison(self):
        assert negate(parse_expression("a < 3")).to_sql() == "(a >= 3)"

    def test_double_negation(self):
        expr = parse_expression("a = 1")
        assert negate(negate(expr)) == expr


@settings(max_examples=60, deadline=None)
@given(
    a=st.one_of(st.none(), st.integers(-50, 50)),
    b=st.one_of(st.none(), st.integers(-50, 50)),
)
def test_matches_sqlite_semantics(a, b):
    """Our three-valued evaluation agrees with a real SQL engine."""
    expressions = [
        "a = b",
        "a < b",
        "a + b",
        "a IS NULL",
        "(a = 1) OR (b = 2)",
        "(a = 1) AND (b = 2)",
        "a % 7",
        "a / 3",
    ]
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (a, b)")
    connection.execute("INSERT INTO t VALUES (?, ?)", (a, b))
    for text in expressions:
        sql = parse_expression(text).to_sql()
        got = parse_expression(text).evaluate({"a": a, "b": b})
        expected = connection.execute(f"SELECT {sql} FROM t").fetchone()[0]
        if isinstance(got, bool):
            got = int(got)
        assert got == expected, f"{text} with a={a}, b={b}"
    connection.close()
