import pytest

from repro.errors import ParseError
from repro.expr import parse_expression
from repro.expr.ast import (
    Binary,
    BoolOp,
    Column,
    Comparison,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Unary,
)


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, BoolOp) and expr.op == "OR"
        assert isinstance(expr.items[1], BoolOp) and expr.items[1].op == "AND"

    def test_comparison_under_and(self):
        expr = parse_expression("a = 1 AND b = 2")
        assert isinstance(expr, BoolOp)
        assert all(isinstance(item, Comparison) for item in expr.items)

    def test_multiplication_under_addition(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, Binary) and expr.left.op == "+"

    def test_not_precedence(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, Unary) and expr.op == "NOT"
        assert isinstance(expr.operand, Comparison)


class TestForms:
    def test_is_null(self):
        expr = parse_expression("a IS NULL")
        assert isinstance(expr, IsNull) and not expr.negated

    def test_is_not_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negated

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.items) == 3

    def test_not_in_list(self):
        expr = parse_expression("a NOT IN (1)")
        assert isinstance(expr, InList) and expr.negated

    def test_like(self):
        expr = parse_expression("name LIKE 'A%'")
        assert isinstance(expr, Like)

    def test_not_like(self):
        expr = parse_expression("name NOT LIKE 'A%'")
        assert isinstance(expr, Like) and expr.negated

    def test_function_call(self):
        expr = parse_expression("upper(name)")
        assert isinstance(expr, FuncCall) and expr.name == "upper"

    def test_nested_function(self):
        expr = parse_expression("coalesce(length(name), 0)")
        assert isinstance(expr, FuncCall)
        assert isinstance(expr.args[0], FuncCall)

    def test_boolean_literals(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert parse_expression("NULL") == Literal(None)

    def test_column(self):
        assert parse_expression("prio") == Column("prio")

    def test_unary_minus(self):
        expr = parse_expression("-a")
        assert isinstance(expr, Unary) and expr.op == "-"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["a +", "(a", "a IN 1", "a IS 5", "AND a", "f(a,", "1 2"],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_expression(bad)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "prio = 1",
            "a + b * c - 2",
            "(a OR b) AND NOT c",
            "name LIKE 'x%' AND prio IN (1, 2)",
            "coalesce(a, b, 0) >= 10",
            "a || b = 'ab'",
            "x IS NOT NULL OR y IS NULL",
        ],
    )
    def test_sql_rendering_reparses_identically(self, text):
        expr = parse_expression(text)
        again = parse_expression(expr.to_sql())
        assert again == parse_expression(again.to_sql())
        row = {"prio": 1, "a": 1, "b": 2, "c": None, "name": "xy", "x": 1, "y": None}
        assert expr.evaluate(row) == again.evaluate(row)
