import pytest

from repro.errors import ParseError
from repro.expr.lexer import EOF, IDENT, NUMBER, OP, STRING, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)][:-1]


class TestTokenKinds:
    def test_identifier(self):
        assert kinds("prio") == [IDENT, EOF]

    def test_number(self):
        assert kinds("42") == [NUMBER, EOF]

    def test_float(self):
        assert values("3.25") == ["3.25"]

    def test_string(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind == STRING
        assert tokens[0].value == "hello world"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_operators_two_char(self):
        assert values("a <= b >= c != d") == ["a", "<=", "b", ">=", "c", "!=", "d"]

    def test_ne_alias(self):
        # <> normalizes to !=
        assert values("a <> b") == ["a", "!=", "b"]

    def test_concat_operator(self):
        assert values("a || b") == ["a", "||", "b"]

    def test_version_bang_identifier(self):
        assert values("Do!") == ["Do!"]

    def test_comment_skipped(self):
        assert values("a -- comment\n + b") == ["a", "+", "b"]

    def test_punctuation(self):
        assert values("f(a, b);") == ["f", "(", "a", ",", "b", ")", ";"]

    def test_dot(self):
        assert values("TasKy2.task") == ["TasKy2", ".", "task"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_number_followed_by_dot_name(self):
        # "1.x" should not eat the dot as a decimal point
        assert values("1.x") == ["1", ".", "x"]
