"""Cross-check: incremental delta propagation == full state remapping.

For each SMO with a fast path, apply a random change via propagate_* and
compare against re-running the full map on the changed input state. This is
the correctness triangle: Datalog rules ≙ state maps ≙ delta propagation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bidel.parser import parse_smo
from repro.bidel.smo.base import FixedContext, TableChange
from repro.bidel.smo.registry import build_semantics
from repro.relational.schema import TableSchema

VALUES = st.integers(min_value=0, max_value=4)
KEYS = st.integers(min_value=1, max_value=12)


def rows(arity, **kwargs):
    return st.dictionaries(KEYS, st.tuples(*([VALUES] * arity)), **kwargs)


def change_strategy(arity):
    return st.builds(
        lambda ups, dels: TableChange(upserts=ups, deletes=dels),
        rows(arity, max_size=4),
        st.sets(KEYS, max_size=3),
    )


def apply_and_compare_forward(semantics, source_role, extent, change, aux=None):
    """propagate_forward(change) must equal diff(map_forward(new state))."""
    base_state = {source_role: dict(extent)}
    if aux:
        base_state.update(aux)
    before = semantics.map_forward(FixedContext(base_state))

    new_extent = dict(extent)
    change.apply_to(new_extent)
    new_state = {source_role: new_extent}
    if aux:
        new_state.update(aux)
    expected = semantics.map_forward(FixedContext(new_state))

    out = semantics.propagate_forward({source_role: change}, FixedContext(new_state))
    assert out is not None
    for role in semantics.target_roles:
        derived = dict(before.get(role, {}))
        out.get(role, TableChange()).apply_to(derived)
        assert derived == expected.get(role, {}), f"role {role}"


class TestSplitDeltaVsMap:
    @settings(max_examples=40, deadline=None)
    @given(extent=rows(1, max_size=8), change=change_strategy(1))
    def test_forward(self, extent, change):
        node = parse_smo("SPLIT TABLE T INTO R WITH v <= 2, S WITH v >= 2")
        semantics = build_semantics(node, (TableSchema.of("T", ["v"]),))
        apply_and_compare_forward(semantics, "U", extent, change)


class TestAddColumnDeltaVsMap:
    @settings(max_examples=40, deadline=None)
    @given(extent=rows(1, max_size=8), change=change_strategy(1))
    def test_forward(self, extent, change):
        node = parse_smo("ADD COLUMN w AS v + 1 INTO T")
        semantics = build_semantics(node, (TableSchema.of("T", ["v"]),))
        apply_and_compare_forward(semantics, "R", extent, change)


class TestDropColumnDeltaVsMap:
    @settings(max_examples=40, deadline=None)
    @given(extent=rows(2, max_size=8), change=change_strategy(2))
    def test_forward(self, extent, change):
        node = parse_smo("DROP COLUMN w FROM T DEFAULT 0")
        semantics = build_semantics(node, (TableSchema.of("T", ["v", "w"]),))
        base = {"R": dict(extent)}
        before = semantics.map_forward(FixedContext(base))
        new_extent = dict(extent)
        change.apply_to(new_extent)
        expected = semantics.map_forward(FixedContext({"R": new_extent}))
        out = semantics.propagate_forward({"R": change}, FixedContext({"R": new_extent}))
        for role in ("R2", "B"):
            derived = dict(before.get(role, {}))
            out.get(role, TableChange()).apply_to(derived)
            assert derived == expected.get(role, {})


class TestDecomposePkDeltaVsMap:
    @settings(max_examples=40, deadline=None)
    @given(extent=rows(2, max_size=8), change=change_strategy(2))
    def test_forward(self, extent, change):
        node = parse_smo("DECOMPOSE TABLE T INTO L(a), R(b) ON PK")
        semantics = build_semantics(node, (TableSchema.of("T", ["a", "b"]),))
        apply_and_compare_forward(semantics, "R", extent, change)


class TestRulesAgreeWithMaps:
    """The declared Datalog rules evaluate to the same state the maps build."""

    @pytest.mark.parametrize(
        "smo_text,schemas,source_roles,facts",
        [
            (
                "SPLIT TABLE T INTO R WITH v <= 2, S WITH v >= 2",
                [TableSchema.of("T", ["v"])],
                ["U"],
                {"U": {(1, 1), (2, 3), (3, 2)}},
            ),
            (
                "MERGE TABLE R (v <= 2), S (v >= 2) INTO T",
                [TableSchema.of("R", ["v"]), TableSchema.of("S", ["v"])],
                ["R", "S"],
                {"R": {(1, 1)}, "S": {(2, 4)}},
            ),
            (
                "ADD COLUMN w AS v + 1 INTO T",
                [TableSchema.of("T", ["v"])],
                ["R"],
                {"R": {(1, 5), (2, 7)}},
            ),
            (
                "JOIN TABLE L, R INTO T ON PK",
                [TableSchema.of("L", ["a"]), TableSchema.of("R", ["b"])],
                ["R", "S"],
                {"R": {(1, 10), (2, 20)}, "S": {(1, 99)}},
            ),
        ],
    )
    def test_gamma_tgt_rules_match_map_forward(
        self, smo_text, schemas, source_roles, facts
    ):
        from repro.datalog.evaluate import evaluate

        node = parse_smo(smo_text)
        semantics = build_semantics(node, tuple(schemas))
        rules = semantics.gamma_tgt_rules()
        assert rules is not None
        derived = evaluate(rules, facts)
        extents = {
            role: {key: tuple(rest) for key, *rest in fact_set}
            for role, fact_set in facts.items()
        }
        state = semantics.map_forward(FixedContext(extents))
        for role in semantics.target_roles:
            rule_rows = {key: tuple(rest) for key, *rest in derived.get(role, set())}
            assert rule_rows == state.get(role, {}), role
