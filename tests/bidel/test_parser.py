import pytest

from repro.bidel.ast import (
    AddColumn,
    CreateSchemaVersion,
    CreateTable,
    Decompose,
    DropColumn,
    DropSchemaVersion,
    DropTable,
    Join,
    Materialize,
    Merge,
    RenameColumn,
    RenameTable,
    Split,
)
from repro.bidel.parser import parse_script, parse_smo
from repro.errors import ParseError
from repro.relational.types import DataType


class TestSmoForms:
    def test_create_table(self):
        smo = parse_smo("CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER)")
        assert isinstance(smo, CreateTable)
        assert [c.name for c in smo.columns] == ["author", "task", "prio"]
        assert smo.columns[2].dtype is DataType.INTEGER

    def test_create_table_untyped(self):
        smo = parse_smo("CREATE TABLE T(a, b)")
        assert all(c.dtype is DataType.ANY for c in smo.columns)

    def test_drop_table(self):
        assert isinstance(parse_smo("DROP TABLE Task"), DropTable)

    def test_rename_table(self):
        smo = parse_smo("RENAME TABLE Task INTO Job")
        assert isinstance(smo, RenameTable) and smo.new_name == "Job"

    def test_rename_column(self):
        smo = parse_smo("RENAME COLUMN author IN Author TO name")
        assert isinstance(smo, RenameColumn)
        assert (smo.table, smo.column, smo.new_name) == ("Author", "author", "name")

    def test_add_column(self):
        smo = parse_smo("ADD COLUMN total AS a + b INTO T")
        assert isinstance(smo, AddColumn)
        assert smo.function.columns() == {"a", "b"}

    def test_drop_column(self):
        smo = parse_smo("DROP COLUMN prio FROM Todo DEFAULT 1")
        assert isinstance(smo, DropColumn)
        assert smo.default.evaluate({}) == 1

    def test_split_two_targets(self):
        smo = parse_smo("SPLIT TABLE T INTO R WITH prio = 1, S WITH prio = 2")
        assert isinstance(smo, Split)
        assert smo.second_table == "S"

    def test_split_single_target(self):
        smo = parse_smo("SPLIT TABLE Task INTO Todo WITH prio = 1")
        assert smo.second_table is None

    def test_merge(self):
        smo = parse_smo("MERGE TABLE R (a = 1), S (a = 2) INTO T")
        assert isinstance(smo, Merge)

    def test_decompose_pk(self):
        smo = parse_smo("DECOMPOSE TABLE R INTO S(a, b), T(c) ON PK")
        assert isinstance(smo, Decompose) and smo.kind.method == "PK"

    def test_decompose_fk_short(self):
        smo = parse_smo("DECOMPOSE TABLE task INTO task(task, prio), author(author) ON FK author")
        assert smo.kind.method == "FK" and smo.kind.fk_column == "author"

    def test_decompose_foreign_key_long_form(self):
        smo = parse_smo(
            "DECOMPOSE TABLE task INTO task(task, prio), author(author) ON FOREIGN KEY author"
        )
        assert smo.kind.method == "FK"

    def test_decompose_on_condition(self):
        smo = parse_smo("DECOMPOSE TABLE R INTO S(a), T(b) ON a = b")
        assert smo.kind.method == "COND"

    def test_join_pk(self):
        smo = parse_smo("JOIN TABLE R, S INTO T ON PK")
        assert isinstance(smo, Join) and not smo.outer

    def test_outer_join(self):
        smo = parse_smo("OUTER JOIN TABLE S, T INTO R ON PK")
        assert smo.outer

    def test_join_condition(self):
        smo = parse_smo("JOIN TABLE R, S INTO T ON a = b")
        assert smo.kind.method == "COND"


class TestStatements:
    def test_create_schema_version_from(self):
        (stmt,) = parse_script(
            "CREATE SCHEMA VERSION Do! FROM TasKy WITH "
            "SPLIT TABLE Task INTO Todo WITH prio = 1; "
            "DROP COLUMN prio FROM Todo DEFAULT 1;"
        )
        assert isinstance(stmt, CreateSchemaVersion)
        assert stmt.name == "Do!" and stmt.source == "TasKy"
        assert len(stmt.smos) == 2

    def test_initial_version_without_from(self):
        (stmt,) = parse_script("CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a);")
        assert stmt.source is None

    def test_multiple_statements(self):
        statements = parse_script(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a);\n"
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS 0 INTO T;\n"
            "MATERIALIZE 'v2';\n"
            "DROP SCHEMA VERSION v1;"
        )
        kinds = [type(s) for s in statements]
        assert kinds == [CreateSchemaVersion, CreateSchemaVersion, Materialize, DropSchemaVersion]

    def test_materialize_quoted_targets(self):
        (stmt,) = parse_script("MATERIALIZE 'TasKy2.task', 'TasKy2.author';")
        assert stmt.targets == ("TasKy2.task", "TasKy2.author")

    def test_materialize_unquoted(self):
        (stmt,) = parse_script("MATERIALIZE TasKy2.task;")
        assert stmt.targets == ("TasKy2.task",)

    def test_paper_figure1_scripts_parse(self):
        statements = parse_script(
            """
            CREATE SCHEMA VERSION Do! FROM TasKy WITH
            SPLIT TABLE Task INTO Todo WITH prio=1;
            DROP COLUMN prio FROM Todo DEFAULT 1;
            CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
            DECOMPOSE TABLE task INTO task(task,prio), author(author) ON FOREIGN KEY author;
            RENAME COLUMN author IN author TO name;
            """
        )
        assert len(statements) == 2
        assert all(len(s.smos) == 2 for s in statements)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SPLIT TABLE T INTO",
            "CREATE SCHEMA VERSION WITH CREATE TABLE T(a);",
            "MERGE TABLE R, S INTO T",
            "DECOMPOSE TABLE R INTO S(a), T(b)",
            "ADD COLUMN x INTO T",
            "MATERIALIZE ;",
            "RENAME COLUMN a TO b",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse_script(bad)

    def test_trailing_garbage_on_single_smo(self):
        with pytest.raises(ParseError):
            parse_smo("DROP TABLE T garbage")


class TestUnparseRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "CREATE TABLE T(a INTEGER, b TEXT)",
            "DROP TABLE T",
            "RENAME TABLE T INTO U",
            "RENAME COLUMN a IN T TO b",
            "ADD COLUMN c AS a + b INTO T",
            "DROP COLUMN c FROM T DEFAULT 0",
            "SPLIT TABLE T INTO R WITH a = 1, S WITH a = 2",
            "MERGE TABLE R (a = 1), S (a = 2) INTO T",
            "DECOMPOSE TABLE R INTO S(a), T(b) ON PK",
            "DECOMPOSE TABLE R INTO S(a), T(b) ON FK b_id",
            "JOIN TABLE R, S INTO T ON PK",
            "OUTER JOIN TABLE S, T INTO R ON FK b_id",
        ],
    )
    def test_parse_unparse_parse_fixpoint(self, text):
        smo = parse_smo(text)
        again = parse_smo(smo.unparse())
        assert again.unparse() == smo.unparse()

    def test_statement_unparse(self):
        (stmt,) = parse_script(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS 0 INTO T;"
        )
        (reparsed,) = parse_script(stmt.unparse())
        assert reparsed.unparse() == stmt.unparse()
