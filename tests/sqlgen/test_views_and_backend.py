"""Generated view SQL: structure, and row-parity on a real SQL engine."""

import pytest

from repro.sqlgen.scripts import generated_delta_code_for_version, tasky_generated_scripts
from repro.sqlgen.sqlite_backend import SqliteBackend
from repro.util.codemetrics import measure_code
from tests.conftest import build_paper_tasky


@pytest.fixture(scope="module")
def scenario():
    return build_paper_tasky()


class TestGeneratedScripts:
    def test_delta_code_has_view_per_derived_table(self, scenario):
        code = generated_delta_code_for_version(scenario.engine, "Do!")
        assert any("CREATE VIEW" in view for view in code.views)

    def test_delta_code_has_triggers(self, scenario):
        code = generated_delta_code_for_version(scenario.engine, "Do!")
        assert any("CREATE TRIGGER" in trigger for trigger in code.triggers)
        assert any("INSTEAD OF" in trigger for trigger in code.triggers)

    def test_tasky_scripts_table3_direction(self):
        scripts = tasky_generated_scripts()
        bidel = measure_code(scripts.bidel_evolution)
        sql = measure_code(scripts.sql_evolution)
        assert sql.lines > bidel.lines
        assert sql.statements > bidel.statements
        assert sql.characters > bidel.characters

    def test_migration_script_nonempty(self):
        scripts = tasky_generated_scripts()
        assert "INSERT INTO" in scripts.sql_migration
        assert measure_code(scripts.bidel_migration).lines == 1


class TestSqliteParity:
    """The generated views return exactly the engine's rows on SQLite."""

    @pytest.mark.parametrize(
        "version,table",
        [("TasKy", "Task"), ("Do!", "Todo"), ("TasKy2", "Task"), ("TasKy2", "Author")],
    )
    def test_initial_materialization(self, scenario, version, table):
        backend = SqliteBackend.build(scenario.engine)
        try:
            sqlite_rows = backend.select_keyed(version, table)
            engine_rows = {
                key: tuple(row.values())
                for key, row in scenario.engine.connect(version).select_keyed(table).items()
            }
            assert sqlite_rows == engine_rows
        finally:
            backend.close()

    @pytest.mark.parametrize("materialize", ["Do!", "TasKy2"])
    def test_other_materializations(self, materialize):
        scenario = build_paper_tasky()
        scenario.materialize(materialize)
        backend = SqliteBackend.build(scenario.engine)
        try:
            for version, table in [("TasKy", "Task"), ("Do!", "Todo"), ("TasKy2", "Task")]:
                sqlite_rows = backend.select_keyed(version, table)
                engine_rows = {
                    key: tuple(row.values())
                    for key, row in scenario.engine.connect(version)
                    .select_keyed(table)
                    .items()
                }
                assert sqlite_rows == engine_rows, f"{version}.{table} under {materialize}"
        finally:
            backend.close()

    def test_two_smo_chain_parity(self):
        from repro.workloads.micro import build_two_smo_scenario

        engine = build_two_smo_scenario("split", "add_column", rows=60)
        backend = SqliteBackend.build(engine)
        try:
            sqlite_rows = backend.select_keyed("v3", "R")
            engine_rows = {
                key: tuple(row.values())
                for key, row in engine.connect("v3").select_keyed("R").items()
            }
            assert sqlite_rows == engine_rows
        finally:
            backend.close()


class TestHandwrittenBaseline:
    def test_matches_engine_reads(self):
        from repro.sqlgen.handwritten import handwritten_tasky
        from repro.workloads.tasky import build_tasky

        scenario = build_tasky(50)
        baseline = handwritten_tasky(50, materialization="initial")
        engine_tasks = sorted(
            (r["author"], r["task"], r["prio"]) for r in scenario.tasky.select("Task")
        )
        assert sorted(baseline.read_tasky()) == engine_tasks
        engine_do = sorted((r["author"], r["task"]) for r in scenario.do.select("Todo"))
        assert sorted(baseline.read_do()) == engine_do

    def test_migration_preserves_reads(self):
        from repro.sqlgen.handwritten import handwritten_tasky

        baseline = handwritten_tasky(30, materialization="initial")
        before = sorted(baseline.read_tasky())
        baseline.migrate_to_evolved()
        assert sorted(baseline.read_tasky()) == before
        baseline.migrate_to_initial()
        assert sorted(baseline.read_tasky()) == before
