"""Closed-cursor / closed-connection errors must name the offending method.

``InterfaceError: cannot operate on a closed connection`` tells a caller
*what* broke but not *where*; every such error now leads with the method
that was called, on both the in-process and the network transport.
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import InterfaceError
from repro.server.server import ReproServer
from repro.workloads.tasky import build_tasky


@pytest.fixture(params=["local", "remote"])
def transport(request):
    """A factory for fresh connections to a TasKy engine, per transport."""
    scenario = build_tasky(5, seed=1)
    if request.param == "local":
        yield lambda **kw: repro.connect(scenario.engine, "TasKy", **kw)
        return
    with ReproServer(scenario.engine) as server:
        from repro.server.client import connect_remote

        yield lambda **kw: connect_remote(
            *server.address, "TasKy", timeout=30.0, **kw
        )


CONNECTION_CALLS = [
    ("cursor", lambda conn: conn.cursor()),
    ("execute", lambda conn: conn.execute("SELECT * FROM Task")),
    ("executemany", lambda conn: conn.executemany("DELETE FROM Task WHERE prio = ?", [(1,)])),
    ("commit", lambda conn: conn.commit()),
    ("rollback", lambda conn: conn.rollback()),
    ("__enter__", lambda conn: conn.__enter__()),
]

CURSOR_CALLS = [
    ("execute", lambda cur: cur.execute("SELECT * FROM Task")),
    ("executemany", lambda cur: cur.executemany("DELETE FROM Task WHERE prio = ?", [(1,)])),
    ("fetchone", lambda cur: cur.fetchone()),
    ("fetchmany", lambda cur: cur.fetchmany(2)),
    ("fetchall", lambda cur: cur.fetchall()),
]


class TestClosedConnection:
    @pytest.mark.parametrize("name,call", CONNECTION_CALLS, ids=[n for n, _ in CONNECTION_CALLS])
    def test_method_named_in_error(self, transport, name, call):
        conn = transport()
        conn.close()
        with pytest.raises(InterfaceError, match=rf"{name}\(\).*closed connection"):
            call(conn)

    def test_double_close_is_silent(self, transport):
        conn = transport()
        conn.close()
        conn.close()  # idempotent, no error


class TestClosedCursor:
    @pytest.mark.parametrize("name,call", CURSOR_CALLS, ids=[n for n, _ in CURSOR_CALLS])
    def test_method_named_in_error(self, transport, name, call):
        conn = transport(autocommit=True)
        cur = conn.cursor()
        cur.close()
        with pytest.raises(InterfaceError, match=rf"{name}\(\).*closed cursor"):
            call(cur)
        conn.close()

    @pytest.mark.parametrize("name,call", CURSOR_CALLS, ids=[n for n, _ in CURSOR_CALLS])
    def test_open_cursor_on_closed_connection_names_method(self, transport, name, call):
        conn = transport(autocommit=True)
        cur = conn.cursor()
        conn.close()
        with pytest.raises(InterfaceError, match=rf"{name}\(\).*closed connection"):
            call(cur)
