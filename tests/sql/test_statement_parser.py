import pytest

from repro.errors import ProgrammingError
from repro.expr.ast import Column, Comparison, Literal
from repro.sql.ast import (
    BidelStatement,
    Delete,
    Insert,
    Parameter,
    Select,
    Update,
    bind_expression,
)
from repro.sql.parser import parse_statement


class TestSelectParsing:
    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM Task")
        assert isinstance(stmt, Select)
        assert stmt.table == "Task"
        assert stmt.items is None
        assert stmt.where is None
        assert stmt.param_count == 0

    def test_projections_and_aliases(self):
        stmt = parse_statement("SELECT author, upper(task) AS shout FROM Task")
        assert [item.output_name for item in stmt.items] == ["author", "shout"]
        assert isinstance(stmt.items[0].expression, Column)

    def test_where_order_limit_offset(self):
        stmt = parse_statement(
            "SELECT task FROM Task WHERE prio <= 2 AND author = 'Ann' "
            "ORDER BY prio DESC, task LIMIT 10 OFFSET 5"
        )
        assert stmt.where is not None
        assert len(stmt.order_by) == 2
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == Literal(10)
        assert stmt.offset == Literal(5)

    def test_parameters_numbered_in_order(self):
        stmt = parse_statement(
            "SELECT task FROM Task WHERE prio = ? OR author = ? LIMIT ?"
        )
        assert stmt.param_count == 3
        assert stmt.limit == Parameter(2)

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse_statement("SELECT * FROM Task;"), Select)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ProgrammingError):
            parse_statement("SELECT * FROM Task extra")

    def test_missing_from_rejected(self):
        with pytest.raises(ProgrammingError):
            parse_statement("SELECT a, b")

    def test_clause_keyword_not_an_operand(self):
        with pytest.raises(ProgrammingError):
            parse_statement("SELECT * FROM Task WHERE ORDER BY prio")


class TestDmlParsing:
    def test_insert_with_columns(self):
        stmt = parse_statement(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?), (?, ?, ?)"
        )
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("author", "task", "prio")
        assert len(stmt.rows) == 2
        assert stmt.param_count == 6

    def test_insert_without_columns(self):
        stmt = parse_statement("INSERT INTO Task VALUES ('Ann', 'x', 1)")
        assert stmt.columns is None
        assert stmt.rows[0][2] == Literal(1)

    def test_update(self):
        stmt = parse_statement("UPDATE Task SET prio = prio + 1, task = ? WHERE prio < 3")
        assert isinstance(stmt, Update)
        assert [name for name, _ in stmt.assignments] == ["prio", "task"]
        assert isinstance(stmt.where, Comparison)
        assert stmt.param_count == 1

    def test_delete(self):
        stmt = parse_statement("DELETE FROM Task WHERE author = ?")
        assert isinstance(stmt, Delete)
        assert stmt.param_count == 1

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM Task").where is None

    def test_unsupported_statement(self):
        with pytest.raises(ProgrammingError):
            parse_statement("TRUNCATE Task")

    def test_empty_statement(self):
        with pytest.raises(ProgrammingError):
            parse_statement("")


class TestBidelPassthrough:
    @pytest.mark.parametrize(
        "script",
        [
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a INTEGER);",
            "DROP SCHEMA VERSION v1;",
            "MATERIALIZE 'v1';",
            # multi-statement scripts stay intact
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS 0 INTO T; MATERIALIZE 'v2';",
        ],
    )
    def test_detected_as_bidel(self, script):
        stmt = parse_statement(script)
        assert isinstance(stmt, BidelStatement)
        assert stmt.text == script

    def test_plain_drop_is_not_bidel(self):
        # DROP without SCHEMA VERSION is not a supported SQL statement.
        with pytest.raises(ProgrammingError):
            parse_statement("DROP TABLE T")


class TestPredicateForms:
    """IN (...) lists and IS [NOT] NULL in WHERE — the common client
    predicates — parse and interact correctly with the other clauses."""

    def test_in_list_then_order_by(self):
        stmt = parse_statement(
            "SELECT * FROM T WHERE a IN (1, 2, 3) ORDER BY a DESC LIMIT 2"
        )
        assert stmt.where.evaluate({"a": 2}) is True
        assert stmt.where.evaluate({"a": 9}) is False
        assert stmt.order_by[0].descending
        assert stmt.limit is not None

    def test_not_in_list(self):
        stmt = parse_statement("SELECT * FROM T WHERE a NOT IN (1, 2)")
        assert stmt.where.evaluate({"a": 3}) is True
        assert stmt.where.evaluate({"a": 1}) is False

    def test_is_null_and_is_not_null(self):
        stmt = parse_statement(
            "SELECT * FROM T WHERE a IS NULL AND b IS NOT NULL"
        )
        assert stmt.where.evaluate({"a": None, "b": 1}) is True
        assert stmt.where.evaluate({"a": 1, "b": 1}) is False

    def test_is_null_in_update_and_delete(self):
        update = parse_statement("UPDATE T SET a = 0 WHERE a IS NULL")
        assert update.where.evaluate({"a": None}) is True
        delete = parse_statement("DELETE FROM T WHERE b IN (?, ?)")
        assert delete.param_count == 2


class TestParameterBinding:
    def test_bind_expression_substitutes_literals(self):
        stmt = parse_statement("SELECT * FROM T WHERE a = ? AND b IN (?, ?)")
        bound = bind_expression(stmt.where, (1, "x", None))
        assert bound.evaluate({"a": 1, "b": "x"}) is True
        assert bound.evaluate({"a": 1, "b": "y"}) is None  # NULL in IN-list

    def test_unbound_parameter_raises(self):
        stmt = parse_statement("SELECT * FROM T WHERE a = ?")
        with pytest.raises(ProgrammingError):
            stmt.where.evaluate({"a": 1})

    def test_statements_are_cached_and_reusable(self):
        first = parse_statement("SELECT * FROM Task WHERE prio = ?")
        second = parse_statement("SELECT * FROM Task WHERE prio = ?")
        assert first is second
