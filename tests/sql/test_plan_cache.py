"""The shared statement-plan cache: hits, invalidation on every catalog
transition, executemany's single-plan routing, and the observability
surface — on both transports."""

from __future__ import annotations

import pytest

from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa
from repro.server.client import connect_remote
from repro.server.server import ReproServer
from repro.sql import parser as sql_parser
from repro.sql.connection import connect


@pytest.fixture
def engine():
    e = InVerDa()
    e.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b TEXT);")
    return e


def _connect(engine, backend_kind, version="v1", **kwargs):
    if backend_kind == "sqlite":
        return connect(engine, version, autocommit=True, backend="sqlite", **kwargs)
    return connect(engine, version, autocommit=True, **kwargs)


BACKENDS = ["memory", "sqlite"]


class TestGeneration:
    def test_every_transition_bumps_the_generation(self, engine):
        generation = engine.catalog_generation
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH RENAME COLUMN a IN R TO a2;"
        )
        assert engine.catalog_generation == generation + 1
        engine.execute("MATERIALIZE 'v2';")
        assert engine.catalog_generation == generation + 2
        engine.execute("DROP SCHEMA VERSION v1;")
        assert engine.catalog_generation == generation + 3


class TestCaching:
    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_repeated_statement_hits_the_cache(self, engine, backend_kind):
        conn = _connect(engine, backend_kind)
        sql = "SELECT a, b FROM R WHERE a > ?"
        conn.execute(sql, (0,))
        before = engine.plan_cache.stats()
        for i in range(5):
            conn.execute(sql, (i,))
        after = engine.plan_cache.stats()
        assert after["hits"] >= before["hits"] + 5
        assert after["misses"] == before["misses"]
        conn.close()

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_cached_plan_skips_the_parser(self, engine, backend_kind):
        conn = _connect(engine, backend_kind)
        sql = "SELECT a FROM R ORDER BY a"
        conn.execute(sql)
        sql_parser.reset_parse_counters()
        for _ in range(4):
            conn.execute(sql)
        assert sql_parser.parse_counters["requests"] == 0
        conn.close()

    def test_plans_are_shared_across_connections(self, engine):
        first = _connect(engine, "sqlite")
        second = _connect(engine, "sqlite")
        sql = "SELECT b FROM R"
        first.execute(sql)
        before = engine.plan_cache.stats()
        second.execute(sql)
        after = engine.plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        first.close()
        second.close()

    def test_plan_cache_false_bypasses_the_cache(self, engine):
        conn = _connect(engine, "memory", plan_cache=False)
        sql = "SELECT a FROM R"
        conn.execute(sql)
        before = engine.plan_cache.stats()
        conn.execute(sql)
        after = engine.plan_cache.stats()
        assert (after["hits"], after["misses"]) == (
            before["hits"],
            before["misses"],
        )
        conn.close()

    def test_distinct_versions_get_distinct_plans(self, engine):
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + 1 INTO R;"
        )
        c1 = _connect(engine, "memory", version="v1")
        c2 = _connect(engine, "memory", version="v2")
        assert c1.execute("SELECT * FROM R").description != (
            c2.execute("SELECT * FROM R").description
        )
        c1.close()
        c2.close()


class TestInvalidation:
    @pytest.mark.parametrize("backend_kind", BACKENDS)
    @pytest.mark.parametrize("transition", ["evolution", "materialize", "drop"])
    def test_execute_evolve_reexecute_sees_the_new_catalog(
        self, engine, backend_kind, transition
    ):
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a * 2 INTO R;"
        )
        conn = _connect(engine, backend_kind, version="v2")
        sql = "SELECT * FROM R ORDER BY rowid"
        conn.execute("INSERT INTO R(a, b, c) VALUES (1, 'x', 9)")
        assert conn.execute(sql).fetchall() == [(1, "x", 9)]
        ddl = {
            "evolution": "CREATE SCHEMA VERSION v3 FROM v2 WITH RENAME COLUMN c IN R TO cc;",
            "materialize": "MATERIALIZE 'v2';",
            "drop": "DROP SCHEMA VERSION v1;",
        }[transition]
        conn.execute(ddl)  # any transition must evict the cached plan
        assert conn.execute(sql).fetchall() == [(1, "x", 9)]
        stats = engine.plan_cache.stats()
        assert stats["invalidations"] >= 1
        conn.close()

    def test_stale_plan_never_survives_an_evolution_on_another_connection(
        self, engine
    ):
        reader = _connect(engine, "sqlite")
        writer = _connect(engine, "sqlite")
        reader.execute("INSERT INTO R(a, b) VALUES (1, 'x')")
        assert reader.execute("SELECT * FROM R").fetchall() == [(1, "x")]
        writer.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH DROP COLUMN b FROM R DEFAULT 'd';"
        )
        # Same SQL text, same version, new catalog generation: the reader
        # must re-plan (and still see its own version's shape).
        assert reader.execute("SELECT * FROM R").fetchall() == [(1, "x")]
        reader.close()
        writer.close()


class TestStaleConnections:
    def test_cached_plan_does_not_bypass_the_backend_attach_guard(self, engine):
        from repro.errors import InterfaceError

        stale = connect(engine, "v1", autocommit=True)  # memory, pre-attach
        sql = "SELECT a FROM R"
        stale.execute(sql)  # caches a memory plan
        live = _connect(engine, "sqlite")  # attaches the live backend
        live.execute("INSERT INTO R(a, b) VALUES (1, 'x')")
        # The SAME statement text must now refuse on the stale connection
        # (a cache hit must honour the guard a fresh compile applies).
        with pytest.raises(InterfaceError):
            stale.execute(sql)
        stale.close()
        live.close()

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_session_pinned_to_a_dropped_version_refuses_cleanly(
        self, engine, backend_kind
    ):
        """v1's table versions survive inside v2, so without an explicit
        guard a session still pinned to the dropped v1 could keep planning
        against the shared delta code.  The contract (and what the network
        server enforces) is a clean OperationalError naming the version."""
        from repro.errors import OperationalError

        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + 1 INTO R;"
        )
        conn = _connect(engine, backend_kind, version="v1")
        sql = "SELECT a FROM R"
        conn.execute(sql)  # caches a plan for the doomed version
        engine.execute("DROP SCHEMA VERSION v1;")
        with pytest.raises(OperationalError, match="'v1' was dropped"):
            conn.execute(sql)  # the cached-plan path
        with pytest.raises(OperationalError, match="'v1' was dropped"):
            conn.execute("SELECT b FROM R")  # the fresh-compile path
        conn.close()


class TestExecutemany:
    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_executemany_accepts_none_parameter_rows(self, engine, backend_kind):
        conn = _connect(engine, backend_kind)
        cursor = conn.executemany("INSERT INTO R(a) VALUES (7)", [None, (), None])
        assert cursor.rowcount == 3
        assert conn.execute("SELECT a FROM R").fetchall() == [(7,), (7,), (7,)]
        conn.close()

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_executemany_plans_once(self, engine, backend_kind):
        conn = _connect(engine, backend_kind)
        sql_parser.reset_parse_counters()
        conn.executemany(
            "INSERT INTO R(a, b) VALUES (?, ?)",
            [(i, f"w{i}") for i in range(50)],
        )
        # One parse request for the batch — not one per parameter row.
        assert sql_parser.parse_counters["requests"] == 1
        # A second batch reuses the cached plan: no parse request at all.
        conn.executemany(
            "INSERT INTO R(a, b) VALUES (?, ?)",
            [(i, f"v{i}") for i in range(50)],
        )
        assert sql_parser.parse_counters["requests"] == 1
        assert len(conn.execute("SELECT rowid FROM R").fetchall()) == 100
        conn.close()

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_executemany_update_reuses_one_plan(self, engine, backend_kind):
        conn = _connect(engine, backend_kind)
        conn.executemany(
            "INSERT INTO R(a, b) VALUES (?, ?)", [(i, "w") for i in range(4)]
        )
        sql_parser.reset_parse_counters()
        cursor = conn.executemany(
            "UPDATE R SET b = ? WHERE a = ?", [("x", 1), ("y", 2)]
        )
        assert cursor.rowcount == 2
        assert sql_parser.parse_counters["requests"] == 1
        conn.close()


class TestObservability:
    def test_connection_stats_surface_cache_and_pool(self, engine):
        conn = _connect(engine, "sqlite")
        conn.execute("SELECT a FROM R")
        conn.execute("SELECT a FROM R")
        stats = conn.stats()
        assert stats["backend"] == "sqlite"
        assert stats["plan_cache"]["hits"] >= 1
        assert stats["pool"]["leased"] >= 1
        assert stats["pool"]["plan_cache"]["hits"] >= 1  # pool folds them in
        conn.close()

    def test_memory_connection_stats(self, engine):
        conn = _connect(engine, "memory")
        conn.execute("SELECT a FROM R")
        stats = conn.stats()
        assert stats["backend"] == "memory"
        assert "pool" not in stats
        assert stats["plan_cache"]["maxsize"] > 0
        conn.close()


class TestRemoteTransport:
    @pytest.fixture
    def served(self, engine):
        backend = LiveSqliteBackend.attach(engine)
        server = ReproServer(engine).start()
        yield engine, server
        server.close()
        backend.close()

    def test_remote_clients_share_the_server_side_plan_cache(self, served):
        engine, server = served
        host, port = server.address
        first = connect_remote(host, port, "v1", autocommit=True, timeout=10.0)
        second = connect_remote(host, port, "v1", autocommit=True, timeout=10.0)
        sql = "SELECT a, b FROM R"
        first.execute(sql)
        before = engine.plan_cache.stats()
        second.execute(sql)
        first.execute(sql)
        after = engine.plan_cache.stats()
        assert after["hits"] >= before["hits"] + 2
        stats = first.stats()
        assert stats["plan_cache"]["hits"] >= 2
        assert stats["pool"]["plan_cache"]["hits"] >= 2
        first.close()
        second.close()

    def test_remote_execute_evolve_reexecute_sees_the_new_catalog(self, served):
        engine, server = served
        host, port = server.address
        conn = connect_remote(host, port, "v1", autocommit=True, timeout=10.0)
        conn.execute("INSERT INTO R(a, b) VALUES (7, 'z')")
        sql = "SELECT * FROM R"
        assert conn.execute(sql).fetchall() == [(7, "z")]
        conn.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH DROP COLUMN b FROM R DEFAULT 'd';"
        )
        assert conn.execute(sql).fetchall() == [(7, "z")]
        other = connect_remote(host, port, "v2", autocommit=True, timeout=10.0)
        assert other.execute(sql).fetchall() == [(7,)]
        conn.close()
        other.close()
