import pytest

import repro
from repro.errors import InterfaceError, OperationalError, ProgrammingError
from repro.relational.types import DataType


@pytest.fixture
def db():
    engine = repro.InVerDa()
    engine.execute(
        """
        CREATE SCHEMA VERSION TasKy WITH
        CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
        """
    )
    conn = repro.connect(engine, "TasKy", autocommit=True)
    conn.executemany(
        "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
        [
            ("Ann", "Organize party", 3),
            ("Ben", "Learn for exam", 2),
            ("Ann", "Write paper", 1),
            ("Ben", "Clean room", 1),
        ],
    )
    return engine


@pytest.fixture
def conn(db):
    return repro.connect(db, "TasKy", autocommit=True)


class TestModuleShape:
    def test_pep249_globals(self):
        import repro.sql as sql

        assert sql.apilevel == "2.0"
        assert sql.paramstyle == "qmark"
        assert issubclass(sql.ProgrammingError, sql.Error)

    def test_connect_infers_single_version(self, db):
        conn = repro.connect(db)
        assert conn.version_name == "TasKy"

    def test_connect_requires_version_when_ambiguous(self, db):
        db.execute("CREATE SCHEMA VERSION V2 FROM TasKy WITH RENAME TABLE Task INTO T;")
        with pytest.raises(InterfaceError):
            repro.connect(db)

    def test_connect_unknown_version(self, db):
        with pytest.raises(InterfaceError):
            repro.connect(db, "Nope")


class TestSelect:
    def test_select_star_columns_in_schema_order(self, conn):
        cur = conn.execute("SELECT * FROM Task ORDER BY task LIMIT 1")
        assert [d[0] for d in cur.description] == ["author", "task", "prio"]
        assert cur.fetchall() == [("Ben", "Clean room", 1)]

    def test_description_types(self, conn):
        cur = conn.execute("SELECT prio, author, prio * 2 AS double FROM Task")
        names = [d[0] for d in cur.description]
        types = [d[1] for d in cur.description]
        assert names == ["prio", "author", "double"]
        assert types[0] == DataType.INTEGER
        assert types[2] is None
        assert all(len(d) == 7 for d in cur.description)

    def test_parameter_binding(self, conn):
        rows = conn.execute(
            "SELECT task FROM Task WHERE author = ? AND prio >= ? ORDER BY task",
            ("Ann", 2),
        ).fetchall()
        assert rows == [("Organize party",)]

    def test_wrong_parameter_count(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT * FROM Task WHERE prio = ?", (1, 2))
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT * FROM Task WHERE prio = ?")

    def test_string_parameters_rejected(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT * FROM Task WHERE author = ?", "Ann")

    def test_mapping_parameters_rejected(self, conn):
        # qmark style is positional; dict keys must never leak in as data.
        with pytest.raises(ProgrammingError):
            conn.execute(
                "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                {"author": "Ann", "task": "x", "prio": 1},
            )

    def test_fetchmany_negative_size_does_not_rewind(self, conn):
        cur = conn.execute("SELECT task FROM Task ORDER BY task")
        first = cur.fetchone()
        assert cur.fetchmany(-5) == []
        assert cur.fetchone() != first  # cursor moved forward, not back

    def test_failed_execute_clears_previous_result(self, conn):
        cur = conn.execute("SELECT task FROM Task")
        with pytest.raises(ProgrammingError):
            cur.execute("BOGUS STATEMENT")
        assert cur.fetchall() == []
        assert cur.description is None

    def test_fetch_interface(self, conn):
        cur = conn.execute("SELECT task FROM Task ORDER BY task")
        assert cur.rowcount == 4
        assert cur.fetchone() == ("Clean room",)
        assert cur.fetchmany(2) == [("Learn for exam",), ("Organize party",)]
        assert cur.fetchall() == [("Write paper",)]
        assert cur.fetchone() is None
        assert cur.fetchall() == []

    def test_iteration(self, conn):
        cur = conn.execute("SELECT task FROM Task WHERE prio = 1 ORDER BY task")
        assert [task for (task,) in cur] == ["Clean room", "Write paper"]

    def test_order_by_desc_and_offset(self, conn):
        rows = conn.execute(
            "SELECT task FROM Task ORDER BY prio DESC, task ASC LIMIT 2 OFFSET 1"
        ).fetchall()
        assert rows == [("Learn for exam",), ("Clean room",)]

    def test_negative_offset_clamps_to_zero(self, conn):
        rows = conn.execute(
            "SELECT task FROM Task ORDER BY task LIMIT 2 OFFSET ?", (-3,)
        ).fetchall()
        assert rows == [("Clean room",), ("Learn for exam",)]

    def test_expression_projection(self, conn):
        rows = conn.execute(
            "SELECT author || ': ' || task AS line FROM Task WHERE prio = 3"
        ).fetchall()
        assert rows == [("Ann: Organize party",)]

    def test_scalar_functions(self, conn):
        rows = conn.execute(
            "SELECT upper(author) FROM Task WHERE length(task) = ? ORDER BY 1 LIMIT 1",
            (10,),
        ).fetchall()
        assert rows == [("BEN",)]  # 'Clean room'

    def test_unknown_column_rejected(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT nope FROM Task")
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT * FROM Task WHERE nope = 1").fetchall()

    def test_unknown_table_rejected(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT * FROM Missing")

    def test_rowid_pseudo_column(self, conn):
        rows = conn.execute("SELECT rowid, task FROM Task ORDER BY rowid").fetchall()
        assert [task for _rowid, task in rows] == [
            "Organize party", "Learn for exam", "Write paper", "Clean room",
        ]
        rowid = rows[0][0]
        assert conn.execute(
            "SELECT task FROM Task WHERE rowid = ?", (rowid,)
        ).fetchall() == [("Organize party",)]

    def test_rowid_not_in_star(self, conn):
        cur = conn.execute("SELECT * FROM Task LIMIT 1")
        assert "rowid" not in [d[0] for d in cur.description]


class TestDml:
    def test_insert_rowcount_and_lastrowid(self, conn):
        cur = conn.execute(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("Eve", "New", 5)
        )
        assert cur.rowcount == 1
        assert cur.lastrowid is not None
        assert cur.description is None
        found = conn.execute(
            "SELECT author FROM Task WHERE rowid = ?", (cur.lastrowid,)
        ).fetchall()
        assert found == [("Eve",)]

    def test_insert_without_column_list(self, conn):
        conn.execute("INSERT INTO Task VALUES ('Eve', 'Implicit', 4)")
        assert conn.execute("SELECT * FROM Task WHERE prio = 4").rowcount == 1

    def test_multi_row_insert(self, conn):
        cur = conn.execute(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?), (?, ?, ?)",
            ("X", "a", 1, "Y", "b", 2),
        )
        assert cur.rowcount == 2

    def test_insert_arity_mismatch(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("INSERT INTO Task(author, task) VALUES (?, ?, ?)", ("a", "b", 1))

    def test_update_with_expression(self, conn):
        cur = conn.execute("UPDATE Task SET prio = prio + 10 WHERE author = ?", ("Ann",))
        assert cur.rowcount == 2
        rows = conn.execute(
            "SELECT prio FROM Task WHERE author = 'Ann' ORDER BY prio"
        ).fetchall()
        assert rows == [(11,), (13,)]

    def test_update_unknown_column(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("UPDATE Task SET nope = 1")

    def test_delete(self, conn):
        assert conn.execute("DELETE FROM Task WHERE prio = 1").rowcount == 2
        assert conn.execute("SELECT * FROM Task").rowcount == 2
        assert conn.execute("DELETE FROM Task").rowcount == 2
        assert conn.execute("SELECT * FROM Task").rowcount == 0

    def test_executemany_insert_batches(self, conn):
        cur = conn.executemany(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
            [("A", "t1", 1), ("B", "t2", 2), ("C", "t3", 3)],
        )
        assert cur.rowcount == 3
        assert conn.execute("SELECT * FROM Task").rowcount == 7

    def test_executemany_update(self, conn):
        cur = conn.executemany(
            "UPDATE Task SET prio = ? WHERE author = ?", [(9, "Ann"), (8, "Ben")]
        )
        assert cur.rowcount == 4

    def test_executemany_rejects_select(self, conn):
        with pytest.raises(ProgrammingError):
            conn.executemany("SELECT * FROM Task", [()])

    def test_generated_key_column_update_rejected(self, db):
        db.execute(
            """
            CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
            DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FK author;
            """
        )
        conn2 = repro.connect(db, "TasKy2", autocommit=True)
        with pytest.raises(OperationalError):
            conn2.execute("UPDATE Author SET id = 99")
        # the guard fires upfront, even when the WHERE matches nothing
        with pytest.raises(OperationalError):
            conn2.execute("UPDATE Author SET id = 99 WHERE author = 'nobody'")


class TestDdlThroughCursor:
    def test_create_version_and_query_it(self, conn, db):
        cur = conn.cursor()
        cur.execute(
            "CREATE SCHEMA VERSION Do! FROM TasKy WITH "
            "SPLIT TABLE Task INTO Todo WITH prio = 1; "
            "DROP COLUMN prio FROM Todo DEFAULT 1;"
        )
        do = repro.connect(db, "Do!", autocommit=True)
        assert do.execute("SELECT * FROM Todo").rowcount == 2

    def test_materialize_through_cursor(self, conn, db):
        conn.execute("MATERIALIZE 'TasKy';")
        assert conn.execute("SELECT * FROM Task").rowcount == 4


class TestClosedHandles:
    def test_closed_connection(self, conn):
        conn.close()
        with pytest.raises(InterfaceError):
            conn.cursor()
        with pytest.raises(InterfaceError):
            conn.commit()
        conn.close()  # idempotent

    def test_closed_cursor(self, conn):
        cur = conn.execute("SELECT * FROM Task")
        cur.close()
        with pytest.raises(InterfaceError):
            cur.execute("SELECT * FROM Task")
        with pytest.raises(InterfaceError):
            cur.fetchone()

    def test_cursor_of_closed_connection(self, conn):
        cur = conn.cursor()
        conn.close()
        with pytest.raises(InterfaceError):
            cur.execute("SELECT * FROM Task")
