"""Workload capture: cursors feed per-version access counters, and the
materialization advisor runs off the recorded live traffic."""

from __future__ import annotations

from repro.core.advisor import recommend_from_live, recommend_materialization
from repro.sql.connection import connect
from repro.workloads.tasky import build_tasky


def test_cursors_record_reads_and_writes():
    scenario = build_tasky(10)
    engine = scenario.engine
    engine.workload.reset()
    tasky = connect(engine, "TasKy", autocommit=True)
    do = connect(engine, "Do!", autocommit=True)
    tasky.execute("SELECT * FROM Task")
    tasky.execute("SELECT * FROM Task WHERE prio = 1")
    do.execute("SELECT * FROM Todo")
    tasky.execute("INSERT INTO Task(author, task, prio) VALUES ('A', 'x', 1)")
    assert engine.workload.reads == {"TasKy": 2, "Do!": 1}
    assert engine.workload.writes == {"TasKy": 1}


def test_executemany_counts_each_row():
    scenario = build_tasky(0)
    engine = scenario.engine
    engine.workload.reset()
    conn = connect(engine, "TasKy", autocommit=True)
    conn.executemany(
        "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
        [("a", "t1", 1), ("b", "t2", 2), ("c", "t3", 3)],
    )
    assert engine.workload.writes == {"TasKy": 3}


def test_sqlite_backend_records_too():
    scenario = build_tasky(5)
    engine = scenario.engine
    engine.workload.reset()
    conn = connect(engine, "TasKy2", autocommit=True, backend="sqlite")
    conn.execute("SELECT * FROM Author")
    conn.execute("DELETE FROM Task WHERE prio = 99")
    assert engine.workload.reads == {"TasKy2": 1}
    assert engine.workload.writes == {"TasKy2": 1}


def test_advisor_runs_off_live_traffic():
    scenario = build_tasky(30)
    engine = scenario.engine
    engine.workload.reset()
    do = connect(engine, "Do!", autocommit=True)
    for _ in range(50):
        do.execute("SELECT * FROM Todo")
    recommendation = recommend_from_live(engine)
    # A Do!-dominated workload recommends materializing toward Do!.
    assert "Todo" in recommendation.physical_tables
    # The live recommendation equals the one from the explicit profile.
    explicit = recommend_materialization(engine.genealogy, engine.workload.profile())
    assert explicit.schema == recommendation.schema


def test_recorder_reset_and_empty():
    scenario = build_tasky(1)
    engine = scenario.engine
    engine.workload.reset()
    assert engine.workload.empty
    connect(engine, "TasKy", autocommit=True).execute("SELECT * FROM Task")
    assert not engine.workload.empty
    profile = engine.workload.profile()
    assert profile.reads == {"TasKy": 1.0}
