"""Acceptance: SQL DML round-trips across co-existing schema versions.

Writes issued through one version's DB-API connection must be visible —
correctly transformed by the BiDEL mapping logic — through every other
version's connection, under every materialization, with ``?`` parameter
binding on both the write and the read side.
"""

import pytest

import repro

TASKY_SCRIPT = """
CREATE SCHEMA VERSION TasKy WITH
CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
"""

DO_SCRIPT = """
CREATE SCHEMA VERSION Do! FROM TasKy WITH
SPLIT TABLE Task INTO Todo WITH prio = 1;
DROP COLUMN prio FROM Todo DEFAULT 1;
"""

TASKY2_SCRIPT = """
CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
RENAME COLUMN author IN Author TO name;
"""


@pytest.fixture
def engine():
    db = repro.InVerDa()
    db.execute(TASKY_SCRIPT)
    conn = repro.connect(db, "TasKy", autocommit=True)
    conn.executemany(
        "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
        [
            ("Ann", "Organize party", 3),
            ("Ben", "Learn for exam", 2),
            ("Ann", "Write paper", 1),
            ("Ben", "Clean room", 1),
        ],
    )
    db.execute(DO_SCRIPT)
    db.execute(TASKY2_SCRIPT)
    return db


def connect(engine, version):
    return repro.connect(engine, version, autocommit=True)


class TestReadTransformation:
    def test_split_filters_urgent_tasks(self, engine):
        rows = connect(engine, "Do!").execute(
            "SELECT author, task FROM Todo ORDER BY task"
        ).fetchall()
        assert rows == [("Ben", "Clean room"), ("Ann", "Write paper")]

    def test_decompose_generates_author_ids(self, engine):
        rows = connect(engine, "TasKy2").execute(
            "SELECT id, name FROM Author ORDER BY name"
        ).fetchall()
        assert [name for _id, name in rows] == ["Ann", "Ben"]
        assert all(isinstance(id_, int) for id_, _name in rows)

    def test_join_back_through_fk(self, engine):
        tasky2 = connect(engine, "TasKy2")
        ann_id = tasky2.execute(
            "SELECT id FROM Author WHERE name = ?", ("Ann",)
        ).fetchone()[0]
        rows = tasky2.execute(
            "SELECT task FROM Task WHERE author = ? ORDER BY task", (ann_id,)
        ).fetchall()
        assert rows == [("Organize party",), ("Write paper",)]


class TestWriteThroughOneVersionVisibleInOthers:
    def test_insert_through_do_lands_in_tasky_and_tasky2(self, engine):
        do = connect(engine, "Do!")
        do.execute("INSERT INTO Todo(author, task) VALUES (?, ?)", ("Ann", "Buy milk"))
        # TasKy sees it with the SPLIT's DROP COLUMN default prio = 1
        tasky_row = connect(engine, "TasKy").execute(
            "SELECT author, prio FROM Task WHERE task = ?", ("Buy milk",)
        ).fetchall()
        assert tasky_row == [("Ann", 1)]
        # TasKy2 reuses Ann's generated author id instead of minting one
        assert connect(engine, "TasKy2").execute(
            "SELECT * FROM Author"
        ).rowcount == 2

    def test_update_through_tasky2_visible_in_tasky(self, engine):
        tasky2 = connect(engine, "TasKy2")
        tasky2.execute("UPDATE Author SET name = ? WHERE name = ?", ("Annette", "Ann"))
        rows = connect(engine, "TasKy").execute(
            "SELECT author FROM Task WHERE author = ?", ("Annette",)
        ).fetchall()
        assert len(rows) == 2

    def test_update_through_tasky_moves_rows_into_do(self, engine):
        tasky = connect(engine, "TasKy")
        tasky.execute("UPDATE Task SET prio = ? WHERE task = ?", (1, "Learn for exam"))
        do_rows = connect(engine, "Do!").execute(
            "SELECT task FROM Todo ORDER BY task"
        ).fetchall()
        assert ("Learn for exam",) in do_rows

    def test_delete_through_do_removes_from_all(self, engine):
        do = connect(engine, "Do!")
        assert do.execute("DELETE FROM Todo WHERE author = ?", ("Ben",)).rowcount == 1
        assert connect(engine, "TasKy").execute(
            "SELECT * FROM Task WHERE task = ?", ("Clean room",)
        ).rowcount == 0
        assert connect(engine, "TasKy2").execute(
            "SELECT * FROM Task WHERE task = ?", ("Clean room",)
        ).rowcount == 0


class TestUnderEveryMaterialization:
    @pytest.mark.parametrize("target", ["TasKy", "Do!", "TasKy2"])
    def test_round_trip_stable_under_materialization(self, engine, target):
        engine.execute(f"MATERIALIZE '{target}';")
        do = connect(engine, "Do!")
        tasky = connect(engine, "TasKy")
        tasky2 = connect(engine, "TasKy2")

        do.execute("INSERT INTO Todo(author, task) VALUES (?, ?)", ("Eve", f"at {target}"))
        assert tasky.execute(
            "SELECT prio FROM Task WHERE task = ?", (f"at {target}",)
        ).fetchall() == [(1,)]
        eve = tasky2.execute(
            "SELECT id FROM Author WHERE name = ?", ("Eve",)
        ).fetchone()
        assert eve is not None

        tasky2.execute("DELETE FROM Task WHERE task = ?", (f"at {target}",))
        assert do.execute(
            "SELECT * FROM Todo WHERE task = ?", (f"at {target}",)
        ).rowcount == 0
        assert tasky.execute(
            "SELECT * FROM Task WHERE task = ?", (f"at {target}",)
        ).rowcount == 0

    def test_all_versions_agree_after_migration_cycle(self, engine):
        baseline = {
            version: connect(engine, version).execute(
                f"SELECT * FROM {table} ORDER BY task"
            ).fetchall()
            for version, table in [("TasKy", "Task"), ("Do!", "Todo")]
        }
        for target in ("TasKy2", "Do!", "TasKy"):
            engine.execute(f"MATERIALIZE '{target}';")
            for version, table in [("TasKy", "Task"), ("Do!", "Todo")]:
                assert connect(engine, version).execute(
                    f"SELECT * FROM {table} ORDER BY task"
                ).fetchall() == baseline[version], (target, version)
