"""Transaction semantics of the DB-API layer.

The engine applies writes eagerly and journals undo entries, so a
rollback must undo a write EVERYWHERE it propagated — in the version it
was written through and in every co-existing version that saw it via the
generated mapping logic.
"""

import pytest

import repro
from repro.errors import ProgrammingError, SchemaError
from repro.workloads.tasky import build_tasky


@pytest.fixture
def scenario():
    return build_tasky(20, seed=3)


def counts(engine):
    """(TasKy.Task, Do!.Todo, TasKy2.Task, TasKy2.Author) row counts."""
    return tuple(
        repro.connect(engine, version, autocommit=True)
        .execute(f"SELECT * FROM {table}")
        .rowcount
        for version, table in [
            ("TasKy", "Task"),
            ("Do!", "Todo"),
            ("TasKy2", "Task"),
            ("TasKy2", "Author"),
        ]
    )


class TestImplicitTransactions:
    def test_write_starts_transaction(self, scenario):
        conn = repro.connect(scenario.engine, "TasKy")
        assert not conn.in_transaction
        conn.execute("INSERT INTO Task(author, task, prio) VALUES ('Zed', 'z', 1)")
        assert conn.in_transaction
        conn.commit()
        assert not conn.in_transaction

    def test_select_does_not_start_transaction(self, scenario):
        conn = repro.connect(scenario.engine, "TasKy")
        conn.execute("SELECT * FROM Task")
        assert not conn.in_transaction

    def test_uncommitted_writes_visible_across_versions(self, scenario):
        conn = repro.connect(scenario.engine, "TasKy")
        before = counts(scenario.engine)
        conn.execute("DELETE FROM Task")
        assert counts(scenario.engine)[:3] == (0, 0, 0)
        conn.rollback()
        assert counts(scenario.engine) == before


class TestRollbackAcrossVersions:
    def test_rollback_undoes_propagated_insert(self, scenario):
        before = counts(scenario.engine)
        conn = repro.connect(scenario.engine, "Do!")
        conn.execute("INSERT INTO Todo(author, task) VALUES (?, ?)", ("Zed", "Urgent"))
        tasky = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert (
            tasky.execute("SELECT * FROM Task WHERE task = 'Urgent'").rowcount == 1
        )
        conn.rollback()
        assert counts(scenario.engine) == before
        assert (
            tasky.execute("SELECT * FROM Task WHERE task = 'Urgent'").rowcount == 0
        )

    def test_rollback_undoes_propagated_update_under_any_materialization(self, scenario):
        for target in ("TasKy", "Do!", "TasKy2"):
            scenario.materialize(target)
            tasky2 = repro.connect(scenario.engine, "TasKy2", autocommit=True)
            baseline = tasky2.execute(
                "SELECT task, prio FROM Task ORDER BY task, prio"
            ).fetchall()
            conn = repro.connect(scenario.engine, "TasKy")
            conn.execute("UPDATE Task SET prio = 1")
            conn.rollback()
            after = tasky2.execute(
                "SELECT task, prio FROM Task ORDER BY task, prio"
            ).fetchall()
            assert after == baseline, target

    def test_commit_keeps_writes(self, scenario):
        conn = repro.connect(scenario.engine, "TasKy")
        conn.execute("INSERT INTO Task(author, task, prio) VALUES ('Kim', 'keep', 1)")
        conn.commit()
        conn.rollback()  # no transaction open: no-op
        do = repro.connect(scenario.engine, "Do!", autocommit=True)
        assert do.execute("SELECT * FROM Todo WHERE task = 'keep'").rowcount == 1


class TestWithBlocks:
    def test_with_commits_on_success(self, scenario):
        with repro.connect(scenario.engine, "TasKy") as conn:
            conn.execute("INSERT INTO Task(author, task, prio) VALUES ('W', 'w', 1)")
        assert not conn.in_transaction
        check = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert check.execute("SELECT * FROM Task WHERE author = 'W'").rowcount == 1

    def test_with_rolls_back_on_exception(self, scenario):
        before = counts(scenario.engine)
        with pytest.raises(RuntimeError):
            with repro.connect(scenario.engine, "TasKy") as conn:
                conn.execute("DELETE FROM Task")
                raise RuntimeError("boom")
        assert counts(scenario.engine) == before

    def test_nested_with_joins_outer_transaction(self, scenario):
        conn = repro.connect(scenario.engine, "TasKy")
        with conn:
            conn.execute("INSERT INTO Task(author, task, prio) VALUES ('NX1', 'a', 1)")
            with conn:  # inner block joins; its exit neither commits nor rolls back
                conn.execute("INSERT INTO Task(author, task, prio) VALUES ('NX2', 'b', 1)")
            assert conn.in_transaction  # still open after the inner block
            conn.execute("INSERT INTO Task(author, task, prio) VALUES ('NX3', 'c', 1)")
        check = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert (
            check.execute("SELECT * FROM Task WHERE author LIKE 'NX%'").rowcount == 3
        )

    def test_nested_with_exception_rolls_back_everything(self, scenario):
        before = counts(scenario.engine)
        conn = repro.connect(scenario.engine, "TasKy")
        with pytest.raises(RuntimeError):
            with conn:
                conn.execute("INSERT INTO Task(author, task, prio) VALUES ('N1', 'a', 1)")
                with conn:
                    conn.execute("DELETE FROM Task")
                    raise RuntimeError("inner failure")
        assert counts(scenario.engine) == before

    def test_joiner_rollback_after_owner_commit_is_inert(self, scenario):
        # The joiner's savepoint points into the OWNER's journal; once the
        # owner commits, that journal is gone and a later rollback by the
        # joiner must not touch anyone's newer writes.
        a = repro.connect(scenario.engine, "TasKy")
        b = repro.connect(scenario.engine, "TasKy")
        a.execute("INSERT INTO Task(author, task, prio) VALUES ('J1', 'a', 1)")
        b.execute("INSERT INTO Task(author, task, prio) VALUES ('J2', 'b', 1)")  # joins
        a.commit()
        a.execute("INSERT INTO Task(author, task, prio) VALUES ('J3', 'c', 1)")
        a.execute("INSERT INTO Task(author, task, prio) VALUES ('J4', 'd', 1)")
        b.rollback()  # its transaction ended with the owner's commit: no-op
        check = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert check.execute("SELECT * FROM Task WHERE author LIKE 'J_'").rowcount == 4
        a.rollback()  # a's second transaction still rolls back normally
        assert check.execute("SELECT * FROM Task WHERE author LIKE 'J_'").rowcount == 2

    def test_autocommit_write_survives_foreign_rollback(self, scenario):
        # An autocommit statement commits itself even when another
        # connection's transaction happens to hold the journal.
        txn = repro.connect(scenario.engine, "TasKy")
        txn.execute("INSERT INTO Task(author, task, prio) VALUES ('TX', 'tx', 1)")
        auto = repro.connect(scenario.engine, "TasKy", autocommit=True)
        auto.execute("INSERT INTO Task(author, task, prio) VALUES ('AC', 'ac', 1)")
        txn.rollback()
        check = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert check.execute("SELECT * FROM Task WHERE author = 'TX'").rowcount == 0
        assert check.execute("SELECT * FROM Task WHERE author = 'AC'").rowcount == 1

    def test_joined_connection_rolls_back_only_its_suffix(self, scenario):
        a = repro.connect(scenario.engine, "TasKy")
        b = repro.connect(scenario.engine, "Do!")
        a.execute("INSERT INTO Task(author, task, prio) VALUES ('AA', 'a', 1)")
        b.execute("INSERT INTO Todo(author, task) VALUES ('BB', 'b')")  # joins a's txn
        b.rollback()
        check = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert check.execute("SELECT * FROM Task WHERE author = 'AA'").rowcount == 1
        assert check.execute("SELECT * FROM Task WHERE author = 'BB'").rowcount == 0
        a.commit()
        assert check.execute("SELECT * FROM Task WHERE author = 'AA'").rowcount == 1


class TestBatchAtomicity:
    def test_executemany_error_mid_batch_undoes_whole_batch(self, scenario):
        before = counts(scenario.engine)
        conn = repro.connect(scenario.engine, "TasKy", autocommit=True)
        rows = [("G1", "good", 1), ("G2", "good", 2), ("BAD",), ("G3", "good", 3)]
        with pytest.raises(ProgrammingError):
            conn.executemany(
                "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", rows
            )
        assert counts(scenario.engine) == before
        assert conn.execute("SELECT * FROM Task WHERE task = 'good'").rowcount == 0

    def test_executemany_update_atomic(self, scenario):
        conn = repro.connect(scenario.engine, "TasKy", autocommit=True)
        baseline = conn.execute("SELECT prio FROM Task ORDER BY rowid").fetchall()
        with pytest.raises(ProgrammingError):
            conn.executemany(
                "UPDATE Task SET prio = ? WHERE prio >= ?", [(0, 1), (1,)]
            )
        assert conn.execute("SELECT prio FROM Task ORDER BY rowid").fetchall() == baseline

    def test_insert_many_error_mid_batch_is_atomic(self, scenario):
        # The legacy bulk-insert shim shares the same batched primitive:
        # a schema violation halfway through must leave nothing behind.
        legacy = scenario.engine.connect("TasKy")
        before = counts(scenario.engine)
        rows = [
            {"author": "H1", "task": "h", "prio": 1},
            {"author": "H2", "task": "h", "nope": 9},
        ]
        with pytest.raises(SchemaError):
            legacy.insert_many("Task", rows)
        assert counts(scenario.engine) == before

    def test_failed_statement_inside_transaction_keeps_prior_writes(self, scenario):
        conn = repro.connect(scenario.engine, "TasKy")
        conn.execute("INSERT INTO Task(author, task, prio) VALUES ('OK', 'ok', 1)")
        with pytest.raises(ProgrammingError):
            conn.executemany(
                "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                [("P1", "p", 1), ("BAD",)],
            )
        # the failed batch is gone, the earlier write of the SAME txn stays
        check = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert check.execute("SELECT * FROM Task WHERE author = 'OK'").rowcount == 1
        assert check.execute("SELECT * FROM Task WHERE author = 'P1'").rowcount == 0
        conn.rollback()
        assert check.execute("SELECT * FROM Task WHERE author = 'OK'").rowcount == 0


class TestDdlCommitsTransactions:
    def test_ddl_implicitly_commits_foreign_transaction(self, scenario):
        # A journal carried across MATERIALIZE would reference physical
        # tables the swap drops; DDL therefore commits EVERY open
        # transaction, and a later rollback must be an inert no-op, not a
        # silent partial undo.
        txn = repro.connect(scenario.engine, "TasKy")
        txn.execute("INSERT INTO Task(author, task, prio) VALUES ('DD', 'dd', 1)")
        other = repro.connect(scenario.engine, "TasKy", autocommit=True)
        other.execute("MATERIALIZE 'TasKy2';")
        txn.rollback()  # transaction was committed by the DDL: nothing to undo
        check = repro.connect(scenario.engine, "TasKy", autocommit=True)
        assert check.execute("SELECT * FROM Task WHERE author = 'DD'").rowcount == 1


class TestCloseSemantics:
    def test_close_rolls_back_open_transaction(self, scenario):
        before = counts(scenario.engine)
        conn = repro.connect(scenario.engine, "TasKy")
        conn.execute("DELETE FROM Task")
        conn.close()
        assert counts(scenario.engine) == before

    def test_autocommit_with_block_still_transactional(self, scenario):
        before = counts(scenario.engine)
        conn = repro.connect(scenario.engine, "TasKy", autocommit=True)
        with pytest.raises(RuntimeError):
            with conn:
                conn.execute("DELETE FROM Task")
                raise RuntimeError("abort")
        assert counts(scenario.engine) == before
