"""Runtime lens laws on concrete data, including property-based states.

These exercise the *executable* semantics used by the engine — for every
SMO family, including the identifier-generating ones the symbolic proofs
skip.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bidel.parser import parse_smo
from repro.bidel.smo.base import FixedContext
from repro.bidel.smo.registry import build_semantics
from repro.relational.schema import TableSchema
from repro.verification.lenses import check_chain_round_trip, check_round_trip, check_write_law

VALUES = st.integers(min_value=0, max_value=5)


def keyed_rows(arity, *, min_size=0, max_size=8):
    return st.dictionaries(
        st.integers(min_value=1, max_value=30),
        st.tuples(*([VALUES] * arity)),
        min_size=min_size,
        max_size=max_size,
    )


def split_semantics():
    node = parse_smo("SPLIT TABLE T INTO R WITH v <= 2, S WITH v >= 2")
    return build_semantics(node, (TableSchema.of("T", ["v"]),))


def merge_semantics():
    node = parse_smo("MERGE TABLE R (v <= 2), S (v >= 2) INTO T")
    return build_semantics(
        node, (TableSchema.of("R", ["v"]), TableSchema.of("S", ["v"]))
    )


def add_column_semantics():
    node = parse_smo("ADD COLUMN w AS v + 1 INTO T")
    return build_semantics(node, (TableSchema.of("T", ["v"]),))


def drop_column_semantics():
    node = parse_smo("DROP COLUMN w FROM T DEFAULT v * 2")
    return build_semantics(node, (TableSchema.of("T", ["v", "w"]),))


def decompose_pk_semantics():
    node = parse_smo("DECOMPOSE TABLE T INTO L(a), R(b) ON PK")
    return build_semantics(node, (TableSchema.of("T", ["a", "b"]),))


def join_pk_semantics():
    node = parse_smo("JOIN TABLE L, R INTO T ON PK")
    return build_semantics(
        node, (TableSchema.of("L", ["a"]), TableSchema.of("R", ["b"]))
    )


def decompose_fk_semantics():
    node = parse_smo("DECOMPOSE TABLE T INTO S(a), A(b) ON FK b_ref")
    return build_semantics(node, (TableSchema.of("T", ["a", "b"]),))


class TestRoundTripsExamples:
    """Condition 27/26 on hand-picked states with interesting aux content."""

    def test_split_with_aux(self):
        semantics = split_semantics()
        check_round_trip(
            semantics,
            source_state={
                "U": {1: (1,), 2: (2,), 3: (5,)},
                "Rstar": {7: ()},
                "Splus": {2: (9,)},
            },
        )

    def test_split_target_side_with_twins(self):
        semantics = split_semantics()
        # cR (v<=2) and cS (v>=2) jointly cover every value, so a consistent
        # target state has an empty Uprime; key 2 carries a separated twin.
        check_round_trip(
            semantics,
            target_state={
                "R": {1: (1,), 2: (2,)},
                "S": {2: (4,), 3: (2,)},
                "Uprime": {},
            },
        )

    def test_split_target_side_with_disjoint_conditions_and_uprime(self):
        node = parse_smo("SPLIT TABLE T INTO R WITH v = 1, S WITH v = 2")
        semantics = build_semantics(node, (TableSchema.of("T", ["v"]),))
        check_round_trip(
            semantics,
            target_state={
                "R": {1: (1,)},
                "S": {2: (2,)},
                "Uprime": {9: (5,)},  # matches neither condition: consistent
            },
        )

    def test_merge_both_sides(self):
        semantics = merge_semantics()
        check_round_trip(
            semantics,
            source_state={"R": {1: (1,)}, "S": {2: (3,)}, "Uprime": {}},
        )
        check_round_trip(semantics, target_state={"U": {1: (1,), 2: (3,), 3: (5,)}})

    def test_add_column(self):
        semantics = add_column_semantics()
        check_round_trip(semantics, source_state={"R": {1: (1,), 2: (2,)}, "B": {1: (99,)}})
        check_round_trip(semantics, target_state={"R2": {1: (1, 42)}})

    def test_drop_column(self):
        semantics = drop_column_semantics()
        check_round_trip(semantics, source_state={"R": {1: (1, 10)}})
        check_round_trip(semantics, target_state={"R2": {1: (1,)}, "B": {1: (10,)}})

    def test_decompose_pk_with_null_parts(self):
        semantics = decompose_pk_semantics()
        check_round_trip(
            semantics, source_state={"R": {1: (1, 2), 2: (None, 3), 3: (4, None)}}
        )
        check_round_trip(
            semantics, target_state={"S": {1: (1,), 2: (2,)}, "T": {1: (9,), 5: (6,)}}
        )

    def test_join_pk_with_unmatched_rows(self):
        semantics = join_pk_semantics()
        check_round_trip(
            semantics,
            source_state={"R": {1: (1,), 2: (2,)}, "S": {1: (10,), 3: (30,)}},
        )
        check_round_trip(
            semantics,
            target_state={"T": {1: (1, 10)}, "Rplus": {2: (2,)}, "Splus": {3: (30,)}},
        )

    def test_decompose_fk(self):
        semantics = decompose_fk_semantics()
        check_round_trip(
            semantics,
            source_state={"R": {1: (1, 7), 2: (2, 7), 3: (3, 8)}, "ID": {}},
        )


class TestWriteLaw:
    def test_split_insert(self):
        semantics = split_semantics()

        def write(data):
            data["U"][42] = (1,)

        check_write_law(semantics, source_state={"U": {1: (1,), 2: (4,)}}, write=write)

    def test_split_delete(self):
        semantics = split_semantics()

        def write(data):
            del data["U"][1]

        check_write_law(semantics, source_state={"U": {1: (1,), 2: (4,)}}, write=write)

    def test_add_column_update(self):
        semantics = add_column_semantics()

        def write(data):
            data["R"][1] = (9,)

        check_write_law(semantics, source_state={"R": {1: (1,)}}, write=write)


class TestChains:
    def test_add_then_drop_chain(self):
        chain = [add_column_semantics()]
        check_chain_round_trip(chain, source_state={"R": {1: (1,), 2: (4,)}})


@settings(max_examples=40, deadline=None)
@given(rows=keyed_rows(1))
def test_split_round_trip_27_property(rows):
    check_round_trip(split_semantics(), source_state={"U": rows})


@settings(max_examples=40, deadline=None)
@given(first=keyed_rows(1), second=keyed_rows(1))
def test_split_round_trip_26_property(first, second):
    check_round_trip(split_semantics(), target_state={"R": first, "S": second})


@settings(max_examples=40, deadline=None)
@given(rows=keyed_rows(2))
def test_decompose_pk_round_trip_property(rows):
    # ω rows (all-None payloads) cannot occur in stored data (paper axiom).
    check_round_trip(decompose_pk_semantics(), source_state={"R": rows})


@settings(max_examples=40, deadline=None)
@given(first=keyed_rows(1), second=keyed_rows(1))
def test_join_pk_round_trip_property(first, second):
    check_round_trip(join_pk_semantics(), source_state={"R": first, "S": second})


@settings(max_examples=40, deadline=None)
@given(rows=keyed_rows(2))
def test_decompose_fk_round_trip_property(rows):
    check_round_trip(decompose_fk_semantics(), source_state={"R": rows, "ID": {}})


@settings(max_examples=40, deadline=None)
@given(rows=keyed_rows(1), extra=keyed_rows(1))
def test_merge_round_trip_property(rows, extra):
    check_round_trip(
        merge_semantics(), source_state={"R": rows, "S": extra, "Uprime": {}}
    )
