"""Mechanical reproduction of the Section-5 / Appendix-A proofs."""

import pytest

from repro.errors import VerificationError
from repro.verification import symbolic_spec_for, verify_smo_symbolically
from repro.verification.bidirectionality import ALL_SYMBOLIC_SPECS

ALL_NAMES = sorted(ALL_SYMBOLIC_SPECS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_condition_27_identity(name):
    """D_src = γ_src^data(γ_tgt(D_src)) — the Section 5 derivation."""
    spec = symbolic_spec_for(name)
    c27, _ = verify_smo_symbolically(spec)
    assert c27.holds, c27.problems


@pytest.mark.parametrize("name", ALL_NAMES)
def test_condition_26_identity(name):
    """D_tgt = γ_tgt^data(γ_src(D_tgt)) — the Appendix A derivation."""
    spec = symbolic_spec_for(name)
    _, c26 = verify_smo_symbolically(spec)
    assert c26.holds, c26.problems


def test_split_simplifies_to_single_identity_rule():
    spec = symbolic_spec_for("split")
    c27, c26 = verify_smo_symbolically(spec)
    # Condition 27: exactly T(p, A) <- T_D(p, A) among the data rules.
    data_rules_27 = [r for r in c27.simplified if r.head.pred == "T"]
    assert len(data_rules_27) == 1
    # Condition 26: identity for both R and S.
    assert len([r for r in c26.simplified if r.head.pred == "R"]) == 1
    assert len([r for r in c26.simplified if r.head.pred == "S"]) == 1


def test_add_column_aux_rule_survives():
    """Rule 131: the round trip populates B (the paper's 'aux tables are
    always empty except for SMOs that calculate new values')."""
    spec = symbolic_spec_for("add_column")
    c27, _ = verify_smo_symbolically(spec)
    aux_rules = [r for r in c27.simplified if r.head.pred == "B"]
    assert aux_rules, "expected the computed-value aux rule to remain"


def test_trace_collection():
    spec = symbolic_spec_for("split")
    c27, _ = verify_smo_symbolically(spec, collect_trace=True)
    assert c27.trace, "expected a non-empty simplification trace"


def test_unknown_spec_rejected():
    with pytest.raises(VerificationError):
        symbolic_spec_for("nope")


def test_merge_is_mirrored_split():
    from repro.datalog.symbolic import find_renaming

    split = symbolic_spec_for("split")
    merge = symbolic_spec_for("merge")
    # Fresh anonymous variables differ between spec instances; compare
    # rule-by-rule modulo renaming.
    for merge_rules, split_rules in [
        (merge.gamma_tgt, split.gamma_src),
        (merge.gamma_src, split.gamma_tgt),
    ]:
        assert len(merge_rules) == len(split_rules)
        for m_rule, s_rule in zip(merge_rules, split_rules):
            assert find_renaming(m_rule, s_rule, exact=True) is not None
