"""Server failure modes: crashes, drops, garbage, and concurrent clients."""

import socket
import struct
import threading
import time

import pytest

import repro
from repro.errors import OperationalError
from repro.server import protocol
from repro.server.client import connect_remote
from repro.server.protocol import ProtocolError
from repro.server.server import ReproServer
from repro.workloads.tasky import build_tasky


def remote(server, version=None, **kwargs):
    kwargs.setdefault("timeout", 30.0)
    return connect_remote(*server.address, version, **kwargs)


def wait_until(predicate, timeout=5.0):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestClientDisconnect:
    def test_disconnect_mid_transaction_rolls_back(self, wal_server):
        scenario, server, backend = wal_server
        watcher = remote(server, "TasKy", autocommit=True)
        before = watcher.execute("SELECT * FROM Task").rowcount

        crasher = remote(server, "TasKy")
        crasher.execute("DELETE FROM Task")
        crasher._drop_socket()  # vanish without close/rollback

        assert wait_until(
            lambda: watcher.execute("SELECT * FROM Task").rowcount == before
        ), "uncommitted work of a vanished client was not rolled back"
        watcher.close()

    def test_disconnect_returns_session_to_pool(self, wal_server):
        _, server, backend = wal_server
        baseline = backend.pool.stats()["leased"]
        crasher = remote(server, "TasKy")
        crasher.execute("INSERT INTO Task(author, task, prio) VALUES ('X', 'x', 1)")
        assert backend.pool.stats()["leased"] == baseline + 1
        crasher._drop_socket()
        assert wait_until(
            lambda: backend.pool.stats()["leased"] == baseline
        ), "vanished client's session never returned to the pool"

    def test_disconnect_mid_transaction_on_memory_engine(self, tasky_server):
        scenario, server = tasky_server
        watcher = remote(server, "TasKy", autocommit=True)
        before = watcher.execute("SELECT * FROM Task").rowcount
        crasher = remote(server, "TasKy")
        crasher.execute("DELETE FROM Task")
        crasher._drop_socket()
        assert wait_until(
            lambda: watcher.execute("SELECT * FROM Task").rowcount == before
        )
        watcher.close()


class TestVersionDropped:
    def test_dropped_version_yields_clean_error(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server, "Do!", autocommit=True)
        assert conn.execute("SELECT * FROM Todo").rowcount >= 0
        scenario.engine.drop_schema_version("Do!")
        with pytest.raises(OperationalError, match="dropped"):
            conn.execute("SELECT * FROM Todo")
        # the error repeats (no hang, no crash) until the client gives up
        with pytest.raises(OperationalError, match="dropped"):
            conn.commit()
        conn.close()

    def test_dropped_version_releases_session(self, wal_server):
        scenario, server, backend = wal_server
        conn = remote(server, "Do!")
        conn.execute("SELECT * FROM Todo").fetchall()
        leased_with_client = backend.pool.stats()["leased"]
        scenario.engine.drop_schema_version("Do!")
        with pytest.raises(OperationalError, match="dropped"):
            conn.execute("SELECT * FROM Todo")
        assert backend.pool.stats()["leased"] == leased_with_client - 1
        conn.close()

    def test_other_versions_unaffected_by_drop(self, tasky_server):
        scenario, server = tasky_server
        survivor = remote(server, "TasKy", autocommit=True)
        doomed = remote(server, "Do!", autocommit=True)
        scenario.engine.drop_schema_version("Do!")
        with pytest.raises(OperationalError):
            doomed.execute("SELECT * FROM Todo")
        assert survivor.execute("SELECT * FROM Task").rowcount == 20
        survivor.close()
        doomed.close()

    def test_drop_through_another_remote_client(self, tasky_server):
        scenario, server = tasky_server
        admin = remote(server, "TasKy", autocommit=True)
        doomed = remote(server, "Do!", autocommit=True)
        admin.execute("DROP SCHEMA VERSION Do!;")
        with pytest.raises(OperationalError, match="dropped"):
            doomed.execute("SELECT * FROM Todo")
        admin.close()
        doomed.close()


class TestMalformedFrames:
    def test_garbage_body_gets_error_then_disconnect(self, tasky_server):
        _, server = tasky_server
        sock = socket.create_connection(server.address, timeout=10)
        try:
            sock.sendall(struct.pack(">I", 12) + b"this is junk")
            rfile = sock.makefile("rb")
            reply = protocol.read_frame(rfile)
            assert reply["ok"] is False
            assert reply["error"]["code"] == "ProtocolError"
            assert rfile.read(1) == b""  # server closed the stream
        finally:
            sock.close()

    def test_hostile_length_prefix(self, tasky_server):
        _, server = tasky_server
        sock = socket.create_connection(server.address, timeout=10)
        try:
            sock.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES * 4))
            rfile = sock.makefile("rb")
            reply = protocol.read_frame(rfile)
            assert reply["ok"] is False and reply["error"]["code"] == "ProtocolError"
            assert rfile.read(1) == b""
        finally:
            sock.close()

    def test_request_before_hello(self, tasky_server):
        _, server = tasky_server
        sock = socket.create_connection(server.address, timeout=10)
        try:
            wfile, rfile = sock.makefile("wb"), sock.makefile("rb")
            protocol.write_frame(wfile, {"id": 1, "op": "execute", "sql": "SELECT 1"})
            reply = protocol.read_frame(rfile)
            assert reply["ok"] is False
            assert "hello" in reply["error"]["message"]
        finally:
            sock.close()

    def test_unknown_op(self, tasky_server):
        _, server = tasky_server
        sock = socket.create_connection(server.address, timeout=10)
        try:
            wfile, rfile = sock.makefile("wb"), sock.makefile("rb")
            protocol.write_frame(wfile, {"id": 1, "op": "teleport"})
            reply = protocol.read_frame(rfile)
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]["message"]
        finally:
            sock.close()

    def test_protocol_version_mismatch(self, tasky_server):
        _, server = tasky_server
        sock = socket.create_connection(server.address, timeout=10)
        try:
            wfile, rfile = sock.makefile("wb"), sock.makefile("rb")
            protocol.write_frame(
                wfile, {"id": 1, "op": "hello", "version": "TasKy", "protocol": 99}
            )
            reply = protocol.read_frame(rfile)
            assert reply["ok"] is False
            assert reply["error"]["code"] == "ProtocolError"
        finally:
            sock.close()

    def test_server_survives_garbage(self, tasky_server):
        _, server = tasky_server
        for _ in range(3):
            sock = socket.create_connection(server.address, timeout=10)
            sock.sendall(b"\xff\xff")
            sock.close()
        conn = remote(server, "TasKy", autocommit=True)
        assert conn.execute("SELECT * FROM Task").rowcount == 20
        conn.close()


class TestConcurrentClients:
    def test_concurrent_clients_match_sequential(self, tmp_path):
        """Differential check: N remote clients writing concurrently
        through different versions leave the database in the same visible
        state as the same statements applied sequentially in-process."""
        from repro.backend.sqlite import LiveSqliteBackend

        def statements(worker: int):
            return [
                (
                    "Do!",
                    "INSERT INTO Todo(author, task) VALUES (?, ?)",
                    (f"w{worker}", f"todo-{worker}-{i}"),
                )
                if i % 2
                else (
                    "TasKy",
                    "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                    (f"w{worker}", f"task-{worker}-{i}", 1 + i % 3),
                )
                for i in range(10)
            ]

        # Sequential reference run, in-process.
        ref = build_tasky(20, seed=7)
        ref_backend = LiveSqliteBackend.attach(
            ref.engine, database=str(tmp_path / "ref.db")
        )
        for worker in range(4):
            for version, sql, params in statements(worker):
                repro.connect(ref.engine, version, autocommit=True).execute(sql, params)

        # Concurrent remote run.
        live = build_tasky(20, seed=7)
        live_backend = LiveSqliteBackend.attach(
            live.engine, database=str(tmp_path / "live.db"), pool_size=8
        )
        server = ReproServer(live.engine).start()
        errors: list[Exception] = []

        def worker(index: int) -> None:
            try:
                conns = {
                    v: remote(server, v, autocommit=True) for v in ("TasKy", "Do!")
                }
                for version, sql, params in statements(index):
                    conns[version].execute(sql, params)
                for conn in conns.values():
                    conn.close()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors

        def canonical_tasky2(conn):
            """TasKy2 contents with generated author ids resolved to names
            (surrogate ids depend on interleaving order; names do not)."""
            authors = dict(conn.execute("SELECT id, name FROM Author").fetchall())
            tasks = conn.execute("SELECT task, prio, author FROM Task").fetchall()
            return (
                sorted(authors.values()),
                sorted((task, prio, authors[a]) for task, prio, a in tasks),
            )

        try:
            for version, table in [("TasKy", "Task"), ("Do!", "Todo")]:
                seen = remote(server, version, autocommit=True)
                sql = f"SELECT * FROM {table}"
                got = sorted(seen.execute(sql).fetchall())
                want = sorted(
                    repro.connect(ref.engine, version, autocommit=True)
                    .execute(sql)
                    .fetchall()
                )
                assert got == want, (version, table)
                seen.close()
            tasky2 = remote(server, "TasKy2", autocommit=True)
            assert canonical_tasky2(tasky2) == canonical_tasky2(
                repro.connect(ref.engine, "TasKy2", autocommit=True)
            )
            tasky2.close()
        finally:
            server.close()
            live_backend.close()
            ref_backend.close()


class TestClientDesync:
    def test_reply_id_mismatch_closes_connection(self, tasky_server):
        from repro.errors import InterfaceError

        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        # Force a desynchronized exchange: write one request, then demand
        # the reply of a request that was never sent.
        with conn._io_lock:
            conn._write_request({"op": "ping"})
            with pytest.raises(ProtocolError, match="does not match"):
                conn._read_reply(-1)
        # The stream position is unknowable; the connection must be dead,
        # not silently serving stale replies.
        with pytest.raises(InterfaceError, match=r"execute\(\)"):
            conn.execute("SELECT * FROM Task")

    def test_dropped_cursors_release_statement_slots(self, tasky_server):
        from repro.server.server import MAX_OPEN_STATEMENTS

        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True, page_size=1)
        # Idiomatic DB-API: a fresh (paged) cursor per statement, never
        # explicitly closed.  GC must return each slot to the server.
        for _ in range(MAX_OPEN_STATEMENTS + 5):
            conn.execute("SELECT * FROM Task").fetchone()
        assert conn.execute("SELECT * FROM Task").rowcount == 20
        conn.close()


class TestOversizedResults:
    def test_huge_statement_rejected_not_hung(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        giant = "SELECT * FROM Task WHERE author = '" + "x" * protocol.MAX_FRAME_BYTES + "'"
        with pytest.raises(ProtocolError, match="limit"):
            conn.execute(giant)
        conn.close()
