"""The remote transport's PEP-249 surface: binding, paging, pipelining."""

import pytest

import repro
from repro.errors import InterfaceError, OperationalError, ProgrammingError
from repro.server.client import connect_remote
from repro.server.server import ReproServer


def remote(server, version=None, **kwargs):
    kwargs.setdefault("timeout", 30.0)
    return connect_remote(*server.address, version, **kwargs)


class TestHello:
    def test_bind_and_read(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        assert conn.version_name == "TasKy"
        assert conn.backend_name == "memory"
        local = repro.connect(scenario.engine, "TasKy", autocommit=True)
        sql = "SELECT author, task, prio FROM Task ORDER BY rowid"
        assert conn.execute(sql).fetchall() == local.execute(sql).fetchall()
        conn.close()

    def test_unknown_version_is_interface_error(self, tasky_server):
        _, server = tasky_server
        with pytest.raises(InterfaceError, match="Nope"):
            remote(server, "Nope")

    def test_version_optional_when_single(self):
        db = repro.InVerDa()
        db.execute("CREATE SCHEMA VERSION V1 WITH CREATE TABLE T(a TEXT);")
        with ReproServer(db) as server:
            conn = remote(server)
            assert conn.version_name == "V1"
            conn.close()

    def test_version_required_when_ambiguous(self, tasky_server):
        _, server = tasky_server
        with pytest.raises(InterfaceError, match="version="):
            remote(server)

    def test_unreachable_server(self):
        with pytest.raises(OperationalError, match="cannot reach"):
            connect_remote("127.0.0.1", 1, "TasKy", timeout=0.5)

    def test_description_matches_local(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        local = repro.connect(scenario.engine, "TasKy", autocommit=True)
        sql = "SELECT author, prio FROM Task"
        assert conn.execute(sql).description == local.execute(sql).description
        conn.close()


class TestParameterBinding:
    def test_qmark_binding(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        conn.execute(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("Zed", "zz", 9)
        )
        rows = conn.execute(
            "SELECT task FROM Task WHERE author = ? AND prio = ?", ("Zed", 9)
        ).fetchall()
        assert rows == [("zz",)]
        conn.close()

    def test_wrong_parameter_count_raises_remotely(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        with pytest.raises(ProgrammingError, match="parameter"):
            conn.execute("SELECT * FROM Task WHERE prio = ?", (1, 2))
        conn.close()

    def test_string_params_rejected_client_side(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        with pytest.raises(ProgrammingError, match="sequence"):
            conn.execute("SELECT * FROM Task WHERE author = ?", "Ann")
        conn.close()

    def test_executemany_single_round_trip(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        cur = conn.executemany(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
            [("B1", "b", 1), ("B2", "b", 2), ("B3", "b", 3)],
        )
        assert cur.rowcount == 3
        assert conn.execute("SELECT * FROM Task WHERE task = 'b'").rowcount == 3
        conn.close()


class TestPaging:
    def test_fetch_across_pages(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True, page_size=3)
        local = repro.connect(scenario.engine, "TasKy", autocommit=True)
        sql = "SELECT author, task, prio FROM Task ORDER BY rowid"
        expected = local.execute(sql).fetchall()
        assert len(expected) == 20

        cur = conn.execute(sql)
        assert cur.fetchone() == expected[0]
        assert cur.fetchmany(5) == expected[1:6]  # spans page boundaries
        assert cur.fetchall() == expected[6:]
        assert cur.fetchone() is None
        conn.close()

    def test_iteration_across_pages(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True, page_size=2)
        sql = "SELECT task FROM Task ORDER BY rowid"
        assert list(conn.execute(sql)) == repro.connect(
            scenario.engine, "TasKy", autocommit=True
        ).execute(sql).fetchall()
        conn.close()

    def test_fetchmany_default_arraysize(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True, page_size=4)
        cur = conn.execute("SELECT * FROM Task")
        assert len(cur.fetchmany()) == 1  # PEP 249 default arraysize
        cur.arraysize = 7
        assert len(cur.fetchmany()) == 7
        conn.close()

    def test_new_execute_discards_unfinished_statement(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True, page_size=2)
        cur = conn.cursor()
        cur.execute("SELECT * FROM Task")  # leaves rows server-side
        cur.execute("SELECT * FROM Task WHERE prio = 1")
        assert cur.fetchall() == cur.execute("SELECT * FROM Task WHERE prio = 1").fetchall()
        conn.close()

    def test_open_statement_cap(self, tasky_server):
        from repro.server.server import MAX_OPEN_STATEMENTS

        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True, page_size=1)
        cursors = [conn.cursor() for _ in range(MAX_OPEN_STATEMENTS)]
        for cur in cursors:
            cur.execute("SELECT * FROM Task")  # each holds a paged statement
        with pytest.raises(OperationalError, match="open statements"):
            conn.cursor().execute("SELECT * FROM Task")
        # draining one frees a slot
        cursors[0].fetchall()
        conn.cursor().execute("SELECT * FROM Task").fetchall()
        conn.close()


class TestPipelining:
    def test_batch_executes_in_order(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        cursors = conn.pipeline(
            [
                ("INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("P", "p1", 1)),
                ("INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("P", "p2", 2)),
                ("SELECT task FROM Task WHERE author = ? ORDER BY prio", ("P",)),
            ]
        )
        assert [c.rowcount for c in cursors[:2]] == [1, 1]
        assert cursors[2].fetchall() == [("p1",), ("p2",)]
        conn.close()

    def test_error_mid_batch_still_runs_the_rest(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        with pytest.raises(ProgrammingError, match="Nope"):
            conn.pipeline(
                [
                    ("INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("Q", "q1", 1)),
                    "SELECT * FROM Nope",
                    ("INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("Q", "q2", 1)),
                ]
            )
        # statements before AND after the failing one took effect
        assert conn.execute("SELECT * FROM Task WHERE author = 'Q'").rowcount == 2
        conn.close()

    def test_pipeline_error_does_not_leak_open_statements(self, tasky_server):
        from repro.server.server import MAX_OPEN_STATEMENTS

        _, server = tasky_server
        # page_size=1: every successful SELECT in a failing batch leaves a
        # paged statement server-side; the error path must free them.
        conn = remote(server, "TasKy", autocommit=True, page_size=1)
        for _ in range(MAX_OPEN_STATEMENTS + 2):
            with pytest.raises(ProgrammingError, match="Nope"):
                conn.pipeline(["SELECT * FROM Task", "SELECT * FROM Nope"])
        assert conn.execute("SELECT * FROM Task").rowcount == 20
        conn.close()

    def test_connection_stays_usable_after_pipeline_error(self, tasky_server):
        _, server = tasky_server
        conn = remote(server, "TasKy", autocommit=True)
        with pytest.raises(ProgrammingError):
            conn.pipeline(["SELECT * FROM Nope"])
        assert conn.execute("SELECT * FROM Task").rowcount == 20
        conn.close()


class TestServerStatus:
    def test_status_counts_clients_and_versions(self, tasky_server):
        _, server = tasky_server
        a = remote(server, "TasKy")
        b = remote(server, "Do!")
        status = a.server_status()
        assert status["clients"] == 2
        assert set(status["versions"]) == {"TasKy", "Do!", "TasKy2"}
        assert status["protocol"] == 1
        a.close()
        b.close()

    def test_status_reports_pool_on_live_backend(self, wal_server):
        _, server, backend = wal_server
        a = remote(server, "TasKy")
        b = remote(server, "TasKy2")
        status = a.server_status()
        assert a.backend_name == "sqlite"
        assert status["pool"]["leased"] == 2  # one leased session per client
        assert status["pool"]["database"] == backend.pool.database
        a.close()
        b.close()


class TestRemoteOverLiveBackend:
    def test_sessions_are_independent(self, wal_server):
        scenario, server, backend = wal_server
        a = remote(server, "TasKy")
        b = remote(server, "Do!", autocommit=True)
        before = b.execute("SELECT * FROM Todo").rowcount
        a.execute("INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)", ("W", "w", 1))
        # WAL: b's snapshot reads see only committed state
        assert b.execute("SELECT * FROM Todo").rowcount == before
        a.commit()
        assert b.execute("SELECT * FROM Todo").rowcount == before + 1
        a.close()
        b.close()

    def test_close_returns_session_to_pool(self, wal_server):
        _, server, backend = wal_server
        before = backend.pool.stats()["leased"]
        conn = remote(server, "TasKy")
        assert backend.pool.stats()["leased"] == before + 1
        conn.close()
        deadline = _wait_until(lambda: backend.pool.stats()["leased"] == before)
        assert deadline, "leased session was not returned on client close"


def _wait_until(predicate, timeout=5.0):
    import time

    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()
