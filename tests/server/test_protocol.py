"""Unit tests for the length-prefixed JSON wire protocol."""

import io
import struct

import pytest

from repro.errors import (
    InterfaceError,
    OperationalError,
    ProgrammingError,
)
from repro.relational.types import DataType
from repro.server import protocol
from repro.server.protocol import ProtocolError


def round_trip(message: dict) -> dict:
    buffer = io.BytesIO()
    protocol.write_frame(buffer, message)
    buffer.seek(0)
    return protocol.read_frame(buffer)


class TestFraming:
    def test_round_trip(self):
        message = {"op": "execute", "sql": "SELECT 1", "params": [1, "a", None, 2.5]}
        assert round_trip(message) == message

    def test_multiple_frames_in_one_stream(self):
        buffer = io.BytesIO()
        protocol.write_frame(buffer, {"id": 1})
        protocol.write_frame(buffer, {"id": 2})
        buffer.seek(0)
        assert protocol.read_frame(buffer) == {"id": 1}
        assert protocol.read_frame(buffer) == {"id": 2}
        assert protocol.read_frame(buffer) is None  # clean EOF

    def test_empty_stream_is_clean_eof(self):
        assert protocol.read_frame(io.BytesIO()) is None

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_body(self):
        buffer = io.BytesIO(struct.pack(">I", 100) + b'{"id": 1}')
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.read_frame(buffer)

    def test_body_not_json(self):
        body = b"certainly not json"
        buffer = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.read_frame(buffer)

    def test_body_not_an_object(self):
        body = b"[1, 2, 3]"
        buffer = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.read_frame(buffer)

    def test_oversized_header_rejected_without_allocation(self):
        buffer = io.BytesIO(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="limit"):
            protocol.read_frame(buffer)

    def test_unserializable_message_rejected(self):
        with pytest.raises(ProtocolError, match="JSON-serializable"):
            protocol.write_frame(io.BytesIO(), {"x": object()})


class TestErrorMarshalling:
    @pytest.mark.parametrize(
        "exc",
        [
            ProgrammingError("no table 'Tsak'"),
            OperationalError("version accepts no writes"),
            InterfaceError("cursor(): cannot operate on a closed connection"),
            ProtocolError("unknown op"),
        ],
    )
    def test_known_errors_round_trip_by_class(self, exc):
        payload = protocol.error_response(7, exc)
        assert payload == {
            "id": 7,
            "ok": False,
            "error": {"code": type(exc).__name__, "message": str(exc)},
        }
        rebuilt = protocol.exception_from(payload["error"])
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)

    def test_unexpected_exception_becomes_operational(self):
        payload = protocol.error_response(1, RuntimeError("boom"))
        assert payload["error"]["code"] == "OperationalError"
        assert isinstance(protocol.exception_from(payload["error"]), OperationalError)

    def test_unknown_code_becomes_operational(self):
        exc = protocol.exception_from({"code": "NoSuchError", "message": "m"})
        assert isinstance(exc, OperationalError)


class TestValueMarshalling:
    def test_rows_round_trip_as_tuples(self):
        rows = [("Ann", 1, None, 2.5), ("Ben", 2, "x", 0.0)]
        assert protocol.rows_from_wire(protocol.rows_to_wire(rows)) == rows

    def test_description_type_codes_round_trip(self):
        description = (
            ("author", DataType.TEXT, None, None, None, None, None),
            ("prio", DataType.INTEGER, None, None, None, None, None),
            ("expr", None, None, None, None, None, None),
        )
        wire = protocol.description_to_wire(description)
        assert wire[0][1] == "TEXT"  # JSON-safe on the wire
        assert protocol.description_from_wire(wire) == description

    def test_none_description(self):
        assert protocol.description_to_wire(None) is None
        assert protocol.description_from_wire(None) is None
