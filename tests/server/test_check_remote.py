"""``CHECK`` over the wire: pre-flight diagnostics must round-trip the
remote transport unchanged and leave the server-side catalog untouched."""

from __future__ import annotations

import repro
from repro.server.client import connect_remote

DROP_TASK = "CHECK CREATE SCHEMA VERSION Tmp FROM TasKy WITH DROP TABLE Task;"


def remote(server, version="TasKy", **kwargs):
    kwargs.setdefault("timeout", 30.0)
    kwargs.setdefault("autocommit", True)
    return connect_remote(*server.address, version, **kwargs)


class TestCheckStatement:
    def test_rows_match_local_execution(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server)
        local = repro.connect(scenario.engine, "TasKy", autocommit=True)
        try:
            remote_cursor = conn.execute(DROP_TASK)
            local_cursor = local.execute(DROP_TASK)
            assert remote_cursor.fetchall() == local_cursor.fetchall()
            assert [d[0] for d in remote_cursor.description] == [
                "code", "severity", "object", "message",
            ]
        finally:
            conn.close()

    def test_codes_and_severities_round_trip(self, tasky_server):
        _, server = tasky_server
        conn = remote(server)
        try:
            rows = conn.execute(DROP_TASK).fetchall()
            assert [(row[0], row[1]) for row in rows] == [("RPC204", "warning")]
            rows = conn.execute("CHECK CREATE SCHEMA VERSION Nope FROM Gone "
                                "WITH DROP TABLE Task;").fetchall()
            # The unknown source version also cascades into an unknown table.
            assert {(row[0], row[1]) for row in rows} == {("RPC202", "error")}
            assert len(rows) == 2
        finally:
            conn.close()

    def test_clean_script_yields_no_rows(self, tasky_server):
        _, server = tasky_server
        conn = remote(server)
        try:
            rows = conn.execute(
                "CHECK CREATE SCHEMA VERSION Tmp FROM TasKy WITH "
                "RENAME TABLE Task INTO Chore;"
            ).fetchall()
            assert rows == []
        finally:
            conn.close()


class TestStructuredOp:
    def test_client_check_returns_findings_and_summary(self, tasky_server):
        _, server = tasky_server
        conn = remote(server)
        try:
            result = conn.check(
                "CREATE SCHEMA VERSION Tmp FROM TasKy WITH DROP TABLE Task;"
            )
            assert [f["code"] for f in result["findings"]] == ["RPC204"]
            assert set(result["findings"][0]) == {
                "code", "severity", "object", "message",
            }
            assert result["summary"]["warnings"] == 1
            assert result["summary"]["errors"] == 0
        finally:
            conn.close()

    def test_summary_lands_in_stats(self, tasky_server):
        _, server = tasky_server
        conn = remote(server)
        try:
            conn.check("CREATE SCHEMA VERSION Tmp FROM TasKy WITH DROP TABLE Task;")
            check = conn.stats()["check"]
            assert check["scope"] == "server-check"
            assert check["findings"] == 1
        finally:
            conn.close()


class TestNoSideEffects:
    def test_catalog_not_mutated_server_side(self, tasky_server):
        scenario, server = tasky_server
        engine = scenario.engine
        generation = engine.catalog_generation
        fingerprint = engine.catalog_fingerprint()
        versions = sorted(engine.version_names())
        conn = remote(server)
        try:
            conn.execute(DROP_TASK).fetchall()
            conn.check("MATERIALIZE 'TasKy2';")
        finally:
            conn.close()
        assert engine.catalog_generation == generation
        assert engine.catalog_fingerprint() == fingerprint
        assert sorted(engine.version_names()) == versions

    def test_plan_cache_not_polluted(self, tasky_server):
        scenario, server = tasky_server
        conn = remote(server)
        try:
            conn.execute("SELECT author FROM Task").fetchall()
            before = scenario.engine.plan_cache.stats()["size"]
            conn.execute(DROP_TASK).fetchall()
            assert scenario.engine.plan_cache.stats()["size"] == before
        finally:
            conn.close()
