"""Fixtures for the network serving layer: live servers on ephemeral ports."""

from __future__ import annotations

import pytest

from repro.server.server import ReproServer
from repro.workloads.tasky import build_tasky


@pytest.fixture
def tasky_server():
    """(scenario, server) — the three-version TasKy catalog served over TCP
    from the in-memory engine."""
    scenario = build_tasky(20, seed=7)
    server = ReproServer(scenario.engine).start()
    yield scenario, server
    server.close()


@pytest.fixture
def wal_server(tmp_path):
    """(scenario, server, backend) — TasKy on a file-backed WAL SQLite
    backend, served over TCP: every client leases a pooled session."""
    from repro.backend.sqlite import LiveSqliteBackend

    scenario = build_tasky(20, seed=7)
    backend = LiveSqliteBackend.attach(
        scenario.engine, database=str(tmp_path / "tasky.db"), pool_size=8
    )
    server = ReproServer(scenario.engine).start()
    yield scenario, server, backend
    server.close()
    backend.close()
