"""Acceptance: the ``tests/sql/`` suites pass UNMODIFIED over the network.

The transaction-semantics and cross-version round-trip test classes are
re-collected here with an autouse fixture that reroutes ``repro.connect``
through a live :class:`ReproServer`: every connection the tests open
becomes a real TCP client with its own server-side session.  Nothing in
the test bodies changes — that is the point: the remote transport is a
drop-in replacement for the in-process one.

A tiny page size is forced on every rerouted connection so the suites
also exercise result paging on every multi-row fetch.
"""

from __future__ import annotations

import pytest

import repro
from repro.server.client import connect_remote
from repro.server.server import ReproServer

from tests.sql import test_cross_version as _cross_version
from tests.sql import test_transactions as _transactions

# Re-export the suites' own fixtures so the inherited tests find them in
# this module, exactly as they do in theirs.
scenario = _transactions.scenario
engine = _cross_version.engine


@pytest.fixture(autouse=True)
def remote_transport(monkeypatch):
    """Reroute ``repro.connect`` through a per-engine TCP server."""
    servers: dict[int, ReproServer] = {}

    def connect_via_server(target_engine, version=None, *, autocommit=False, backend=None):
        server = servers.get(id(target_engine))
        if server is None:
            server = ReproServer(target_engine).start()
            servers[id(target_engine)] = server
        return connect_remote(
            *server.address,
            version,
            autocommit=autocommit,
            backend=backend,
            page_size=2,  # force paging through every multi-row result
            timeout=30.0,
        )

    monkeypatch.setattr(repro, "connect", connect_via_server)
    yield
    for server in servers.values():
        server.close()


class TestImplicitTransactionsRemote(_transactions.TestImplicitTransactions):
    pass


class TestRollbackAcrossVersionsRemote(_transactions.TestRollbackAcrossVersions):
    pass


class TestWithBlocksRemote(_transactions.TestWithBlocks):
    pass


class TestBatchAtomicityRemote(_transactions.TestBatchAtomicity):
    pass


class TestDdlCommitsTransactionsRemote(_transactions.TestDdlCommitsTransactions):
    pass


class TestCloseSemanticsRemote(_transactions.TestCloseSemantics):
    pass


class TestReadTransformationRemote(_cross_version.TestReadTransformation):
    pass


class TestWriteThroughOneVersionVisibleInOthersRemote(
    _cross_version.TestWriteThroughOneVersionVisibleInOthers
):
    pass


class TestUnderEveryMaterializationRemote(_cross_version.TestUnderEveryMaterialization):
    pass
