"""The documentation cannot rot: code blocks run, links resolve.

- Every fenced ``python`` block in ``docs/*.md`` is executed, in order,
  in one namespace per file (like a notebook), so the examples in the
  BiDEL reference and the serving guide are verified on every CI run.
  A block preceded by ``<!-- docs-test: skip -->`` is left alone.
- Every relative markdown link in ``docs/*.md`` and ``README.md`` must
  point at an existing file, and same-file ``#anchor`` links must match
  a real heading.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"

DOC_FILES = sorted(DOCS.glob("*.md"))
LINKED_FILES = [*DOC_FILES, REPO / "README.md"]

_FENCE = re.compile(
    r"(?P<skip><!--\s*docs-test:\s*skip\s*-->\s*)?```(?P<lang>[a-zA-Z0-9_+-]*)\n"
    r"(?P<body>.*?)```",
    re.DOTALL,
)
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """(line number, source) of each runnable python block in ``path``."""
    text = path.read_text(encoding="utf-8")
    blocks = []
    for match in _FENCE.finditer(text):
        if match.group("skip") or match.group("lang") != "python":
            continue
        line = text.count("\n", 0, match.start("body")) + 1
        blocks.append((line, match.group("body")))
    return blocks


def github_anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (the variant our docs rely on)."""
    slug = re.sub(r"[`*_]", "", heading.strip().lower())
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def test_docs_exist():
    assert (DOCS / "index.md").exists()
    assert (DOCS / "architecture.md").exists()
    assert (DOCS / "bidel-reference.md").exists()
    assert (DOCS / "serving.md").exists()


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_python_blocks_execute(path):
    """Run the page's python blocks top to bottom in one namespace."""
    blocks = python_blocks(path)
    namespace: dict = {"__name__": f"docs.{path.stem}"}
    for line, source in blocks:
        code = compile(source, f"{path.name}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - that's the point
        except Exception as exc:
            pytest.fail(f"{path.name} block at line {line} failed: {exc!r}")


@pytest.mark.parametrize("path", LINKED_FILES, ids=lambda p: p.name)
def test_intra_doc_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    anchors = {github_anchor(h) for h in _HEADING.findall(text)}
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                broken.append(target)
                continue
            if anchor and resolved.suffix == ".md":
                remote = {
                    github_anchor(h)
                    for h in _HEADING.findall(resolved.read_text(encoding="utf-8"))
                }
                if anchor not in remote:
                    broken.append(target)
        elif anchor and anchor not in anchors:
            broken.append(target)
    assert not broken, f"{path.name} has broken links: {broken}"


def test_every_doc_page_is_reachable_from_index():
    index = (DOCS / "index.md").read_text(encoding="utf-8")
    linked = {t.partition("#")[0] for t in _LINK.findall(index)}
    for page in DOC_FILES:
        if page.name == "index.md":
            continue
        assert page.name in linked, f"docs/index.md does not link {page.name}"
