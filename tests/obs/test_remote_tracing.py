"""Wire-propagated spans: the trace context travels in the request frame,
the server continues the span engine-side, and the reply's timing
envelope splits the round trip into client/network/engine."""

from __future__ import annotations

import pytest

from repro.core.engine import InVerDa
from repro.server.client import connect_remote
from repro.server.server import ReproServer


@pytest.fixture
def server():
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b TEXT);"
    )
    server = ReproServer(engine).start()
    yield server
    server.close()


def remote(server, **kwargs):
    host, port = server.address
    return connect_remote(host, port, "v1", autocommit=True, **kwargs)


class TestTracePropagation:
    def test_remote_statement_yields_one_joined_trace(self, server):
        conn = remote(server, trace=True)
        try:
            cursor = conn.execute("SELECT a FROM R")
            trace = cursor.trace
            assert trace is not None
            # Every span — client-side and server-side — carries the SAME
            # trace id: the server continued the client's trace.
            assert all(span.trace_id == trace.trace_id for span in trace.spans)
            names = [span.name for span in trace.spans]
            assert names[0] == "client.statement"
            assert "network" in names
            assert "engine.statement" in names
            engine_root = next(
                span for span in trace.spans if span.name == "engine.statement"
            )
            # The server-side root is parented on the client root span.
            assert engine_root.parent_id == trace.root.span_id
            # Engine-internal children hang off the engine-side root.
            plan = next(span for span in trace.spans if span.name == "plan")
            assert plan.parent_id == engine_root.span_id
        finally:
            conn.close()

    def test_server_side_trace_lands_in_the_engine_tracer(self, server):
        conn = remote(server, trace=True)
        try:
            conn.execute("SELECT a FROM R")
            server_traces = server.engine.tracer.recent_traces()
            assert len(server_traces) == 1
            client_trace = conn.tracer.recent_traces()[0]
            assert server_traces[0].trace_id == client_trace.trace_id
        finally:
            conn.close()

    def test_cache_attribute_round_trips(self, server):
        conn = remote(server, trace=True)
        try:
            first = conn.execute("SELECT a FROM R")
            assert first.cache_event == "miss"
            second = conn.execute("SELECT a FROM R")
            assert second.cache_event == "hit"
            assert second.statement_kind == "select"
            assert second.trace.root.attributes["cache"] == "hit"
        finally:
            conn.close()

    def test_untraced_remote_statement_starts_no_server_trace(self, server):
        conn = remote(server)
        try:
            cursor = conn.execute("SELECT a FROM R")
            assert cursor.trace is None
            # The timing envelope still reports cache/kind facts.
            assert cursor.cache_event == "miss"
            assert cursor.statement_kind == "select"
            assert server.engine.tracer.recent_traces() == []
        finally:
            conn.close()

    def test_executemany_is_traced_too(self, server):
        conn = remote(server, trace=True)
        try:
            cursor = conn.cursor()
            cursor.executemany(
                "INSERT INTO R (a, b) VALUES (?, ?)", [(1, "x"), (2, "y")]
            )
            assert cursor.statement_kind == "insert"
            names = [span.name for span in cursor.trace.spans]
            assert "engine.statement" in names and "network" in names
        finally:
            conn.close()


class TestClientSlowLog:
    def test_client_slow_threshold_logs_round_trips(self, server):
        conn = remote(server, slow_ms=0.0)
        try:
            conn.execute("SELECT a FROM R")
            entries = conn.tracer.slow_queries()
            assert len(entries) == 1
            assert entries[0].sql == "SELECT a FROM R"
        finally:
            conn.close()

    def test_without_threshold_nothing_is_logged(self, server):
        conn = remote(server)
        try:
            conn.execute("SELECT a FROM R")
            assert conn.tracer.slow_queries() == []
        finally:
            conn.close()


class TestMetricsOp:
    def test_metrics_op_serves_prometheus_text(self, server):
        conn = remote(server)
        try:
            conn.execute("SELECT a FROM R")
            text = conn.metrics_text()
            assert "# TYPE repro_statement_latency_seconds histogram" in text
            assert 'repro_server_requests_total{op="execute"}' in text
            assert "repro_server_clients 1" in text
            assert "repro_catalog_generation 1" in text
        finally:
            conn.close()
