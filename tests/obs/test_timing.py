"""Stopwatch regression tests (moved into ``repro.obs`` from
``repro.util.timing``, which stays as a compatibility shim)."""

from __future__ import annotations

import pytest

from repro.obs import Stopwatch


class TestStopwatch:
    def test_start_stop_accumulates_laps(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.start()
        watch.stop()
        assert len(watch.laps) == 2
        assert watch.elapsed == pytest.approx(sum(watch.laps))
        assert watch.elapsed_ms == pytest.approx(watch.elapsed * 1000.0)

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset_clears_pending_start(self):
        # Regression: reset() while running must clear the pending
        # _started_at, so a later stop() cannot bill the pre-reset
        # interval to the fresh measurement.
        watch = Stopwatch()
        watch.start()
        watch.reset()
        assert not watch.running
        assert watch.elapsed == 0.0
        assert watch.laps == []
        with pytest.raises(RuntimeError):
            watch.stop()

    def test_context_manager_times_the_block(self):
        watch = Stopwatch()
        with watch:
            pass
        assert not watch.running
        assert len(watch.laps) == 1
        assert watch.elapsed >= 0.0

    def test_util_shim_exports_the_same_class(self):
        from repro.util.timing import Stopwatch as ShimStopwatch

        assert ShimStopwatch is Stopwatch
