"""The HTTP scrape endpoint: ``GET /metrics`` in Prometheus text format."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.obs.http import CONTENT_TYPE, MetricsHTTPServer


@pytest.fixture
def endpoint():
    registry = MetricsRegistry()
    registry.counter("demo_total", "Demo counter.", ("op",)).inc(op="x")
    server = MetricsHTTPServer(registry, port=0).start()
    yield server
    server.close()


def fetch(server, path):
    host, port = server.address
    return urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=5.0)


class TestMetricsEndpoint:
    def test_get_metrics_serves_prometheus_text(self, endpoint):
        response = fetch(endpoint, "/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"] == CONTENT_TYPE
        body = response.read().decode("utf-8")
        assert "# TYPE demo_total counter" in body
        assert 'demo_total{op="x"} 1' in body

    def test_index_points_at_metrics(self, endpoint):
        response = fetch(endpoint, "/")
        assert response.status == 200
        assert b"/metrics" in response.read()

    def test_unknown_path_is_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(endpoint, "/nope")
        assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self, endpoint):
        counter = endpoint._httpd.registry.counter("demo_total", "", ("op",))
        counter.inc(op="x")
        body = fetch(endpoint, "/metrics").read().decode("utf-8")
        assert 'demo_total{op="x"} 2' in body
