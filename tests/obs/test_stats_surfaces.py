"""Every stats surface serves the unified ``repro.obs/1`` snapshot, with
the pre-existing keys preserved as stable aliases."""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.engine import InVerDa
from repro.obs import SNAPSHOT_SCHEMA, engine_snapshot
from repro.server.client import connect_remote
from repro.server.server import ReproServer


def build_engine() -> InVerDa:
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b TEXT);"
    )
    return engine


class TestEngineSnapshot:
    def test_schema_and_core_keys(self):
        engine = build_engine()
        snapshot = engine_snapshot(engine)
        assert snapshot["schema"] == SNAPSHOT_SCHEMA == "repro.obs/1"
        assert snapshot["backend"] == "memory"
        assert {"plan_cache", "catalog", "workload", "tracing",
                "metrics"} <= set(snapshot)
        assert snapshot["catalog"]["generation"] == engine.catalog_generation
        json.dumps(snapshot)  # must survive the wire protocol


class TestConnectionStats:
    def test_memory_connection_keeps_legacy_keys(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True)
        stats = conn.stats()
        # Legacy aliases (pre-unification shape).
        assert stats["backend"] == "memory"
        assert "hits" in stats["plan_cache"]
        assert stats["catalog"]["generation"] == engine.catalog_generation
        assert "fingerprint" in stats["catalog"]
        # Unified additions.
        assert stats["schema"] == SNAPSHOT_SCHEMA
        assert "metrics" in stats and "tracing" in stats and "workload" in stats

    def test_sqlite_connection_reports_pool_and_catalog(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True, backend="sqlite")
        conn.execute("INSERT INTO R (a, b) VALUES (1, 'x')")
        stats = conn.stats()
        assert stats["backend"] == "sqlite"
        assert stats["pool"]["leased"] >= 1
        assert "persisted" in stats["catalog"]
        assert "recovery_seconds" in stats["catalog"]
        assert stats["schema"] == SNAPSHOT_SCHEMA

    def test_workload_key_mirrors_the_recorder(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True)
        conn.execute("SELECT a FROM R")
        conn.execute("INSERT INTO R (a, b) VALUES (1, 'x')")
        stats = conn.stats()
        assert stats["workload"]["reads"] == {"v1": 1}
        assert stats["workload"]["writes"] == {"v1": 1}


class TestPoolStats:
    def test_pool_keeps_legacy_keys_and_adds_lease_waits(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True, backend="sqlite")
        pool_stats = engine.live_backend.pool.stats()
        for key in ("database", "wal", "leased", "idle", "pool_size",
                    "max_sessions", "busy_timeout", "closed"):
            assert key in pool_stats, key
        assert pool_stats["lease_waits"]["count"] >= 1
        assert conn is not None


class TestServerSurfaces:
    @pytest.fixture
    def server(self):
        server = ReproServer(build_engine()).start()
        yield server
        server.close()

    def test_status_keeps_legacy_keys_and_serves_the_snapshot(self, server):
        host, port = server.address
        conn = connect_remote(host, port, "v1", autocommit=True)
        try:
            status = conn.server_status()
            # Legacy server-status keys.
            for key in ("protocol", "clients", "versions", "page_size",
                        "plan_cache", "catalog"):
                assert key in status, key
            assert status["clients"] == 1
            # Unified snapshot riding along.
            assert status["schema"] == SNAPSHOT_SCHEMA
            assert "metrics" in status and "tracing" in status
        finally:
            conn.close()

    def test_remote_stats_matches_server_status_catalog(self, server):
        host, port = server.address
        conn = connect_remote(host, port, "v1", autocommit=True)
        try:
            stats = conn.stats()
            status = conn.server_status()
            assert stats["catalog"] == status["catalog"]
            assert stats["plan_cache"].keys() == status["plan_cache"].keys()
            assert stats["schema"] == SNAPSHOT_SCHEMA
            assert stats["client"]["tracing"]["enabled"] is False
        finally:
            conn.close()
