"""Plan-cache invalidation and transition metrics across all three
catalog transitions (evolve / materialize / drop), on both transports."""

from __future__ import annotations

import pytest

import repro
from repro.core.engine import InVerDa
from repro.server.client import connect_remote
from repro.server.server import ReproServer

EVOLVE = "CREATE SCHEMA VERSION v2 FROM v1 WITH RENAME COLUMN a IN R TO a2;"
MATERIALIZE = "MATERIALIZE 'v2';"
DROP = "DROP SCHEMA VERSION v1;"


def build_engine() -> InVerDa:
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b TEXT);"
    )
    return engine


def invalidations(engine) -> float:
    return engine.metrics.get("repro_plan_cache_events_total").value(
        event="invalidation"
    )


def transition_counts(engine) -> dict:
    transitions = engine.metrics.get("repro_transitions_total")
    durations = engine.metrics.get("repro_transition_duration_seconds")
    return {
        kind: (transitions.value(kind=kind),
               durations.series_stats(kind=kind)["count"])
        for kind in ("evolve", "materialize", "drop")
    }


def assert_transition_metrics(engine, baseline: dict,
                              base_generation: int) -> None:
    after = transition_counts(engine)
    for kind in ("evolve", "materialize", "drop"):
        assert after[kind][0] == baseline[kind][0] + 1, kind
        assert after[kind][1] == baseline[kind][1] + 1, kind
    generation_gauge = engine.metrics.get("repro_catalog_generation")
    assert generation_gauge.value() == engine.catalog_generation
    assert engine.catalog_generation == base_generation + 3


class TestInProcess:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_each_transition_invalidates_and_is_timed(self, backend):
        engine = build_engine()
        base_generation = engine.catalog_generation
        conn = repro.connect(engine, "v1", autocommit=True, backend=backend)
        conn.execute("SELECT a FROM R")  # populate the plan cache
        before = invalidations(engine)
        baseline = transition_counts(engine)

        conn.execute(EVOLVE)
        assert invalidations(engine) == before + 1
        conn.execute("SELECT a FROM R")
        assert conn.execute("SELECT a FROM R").cache_event == "hit"

        conn.execute(MATERIALIZE)
        assert invalidations(engine) == before + 2

        conn.execute(DROP)
        assert invalidations(engine) == before + 3

        assert_transition_metrics(engine, baseline, base_generation)


class TestRemote:
    def test_each_transition_invalidates_and_is_timed_over_tcp(self):
        engine = build_engine()
        base_generation = engine.catalog_generation
        server = ReproServer(engine).start()
        host, port = server.address
        conn = connect_remote(host, port, "v1", autocommit=True)
        try:
            conn.execute("SELECT a FROM R")
            before = invalidations(engine)
            baseline = transition_counts(engine)
            conn.execute(EVOLVE)
            assert invalidations(engine) == before + 1
            conn.execute(MATERIALIZE)
            assert invalidations(engine) == before + 2
            conn.execute(DROP)
            assert invalidations(engine) == before + 3
            assert_transition_metrics(engine, baseline, base_generation)
            # The dropped version's counters survive in the registry; the
            # statement latency series still names v1.
            latency = engine.metrics.get("repro_statement_latency_seconds")
            assert latency.series_stats(version="v1", kind="select",
                                        cache="miss")["count"] >= 1
        finally:
            try:
                conn.close()
            except Exception:
                pass
            server.close()
