"""Tracer semantics and in-process statement tracing: span nesting,
slow-query thresholding, ring-buffer bounds."""

from __future__ import annotations

import pytest

import repro
from repro.core.engine import InVerDa
from repro.obs import Tracer


def build_engine() -> InVerDa:
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b TEXT);"
    )
    return engine


class TestTracerCore:
    def test_child_spans_nest_under_the_root(self):
        tracer = Tracer()
        builder = tracer.begin("statement")
        with builder.span("plan"):
            pass
        with builder.span("execute", backend="memory"):
            pass
        trace = builder.finish(kind="select")
        assert trace.root.name == "statement"
        assert trace.root.attributes["kind"] == "select"
        children = trace.spans[1:]
        assert [span.name for span in children] == ["plan", "execute"]
        for span in children:
            assert span.parent_id == trace.root.span_id
            assert span.trace_id == trace.trace_id

    def test_begin_continues_a_foreign_trace(self):
        tracer = Tracer()
        builder = tracer.begin("engine.statement",
                               trace_id="aaaabbbbccccdddd",
                               parent_id="1111222233334444")
        trace = builder.finish()
        assert trace.trace_id == "aaaabbbbccccdddd"
        assert trace.root.parent_id == "1111222233334444"

    def test_trace_ring_buffer_is_bounded(self):
        tracer = Tracer(max_traces=4)
        for index in range(10):
            tracer.begin(f"s{index}").finish()
        traces = tracer.recent_traces()
        assert len(traces) == 4
        assert traces[-1].root.name == "s9"
        assert tracer.stats()["traces_recorded"] == 10

    def test_slow_query_thresholding(self):
        tracer = Tracer(slow_ms=100.0)
        assert tracer.note_statement("SELECT 1", "v1", 0.05) is None
        entry = tracer.note_statement("SELECT 2", "v1", 0.25)
        assert entry is not None
        assert entry.duration_ms == pytest.approx(250.0)
        # The per-statement override beats the tracer default.
        assert tracer.note_statement("SELECT 3", "v1", 0.05,
                                     threshold_ms=10.0) is not None
        assert [e.sql for e in tracer.slow_queries()] == ["SELECT 2", "SELECT 3"]

    def test_no_threshold_never_logs(self):
        tracer = Tracer()
        assert tracer.note_statement("SELECT 1", "v1", 9999.0) is None
        assert tracer.slow_queries() == []


class TestStatementTracing:
    def test_traced_connection_records_plan_and_execute_spans(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True, trace=True)
        cursor = conn.execute("INSERT INTO R (a, b) VALUES (1, 'x')")
        trace = cursor.trace
        assert trace is not None
        names = [span.name for span in trace.spans]
        assert names[0] == "statement"
        assert "plan" in names and "execute" in names
        assert trace.root.attributes["sql"].startswith("INSERT")
        assert trace.root.attributes["kind"] == "insert"
        assert all(span.trace_id == trace.trace_id for span in trace.spans)
        assert trace in engine.tracer.recent_traces()

    def test_untraced_connection_records_nothing(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True)
        cursor = conn.execute("SELECT a FROM R")
        assert cursor.trace is None
        assert engine.tracer.recent_traces() == []

    def test_cache_attribute_flips_to_hit_on_repeat(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True, trace=True)
        first = conn.execute("SELECT a FROM R")
        assert first.cache_event == "miss"
        assert first.trace.root.attributes["cache"] == "miss"
        second = conn.execute("SELECT a FROM R")
        assert second.cache_event == "hit"
        assert second.trace.root.attributes["cache"] == "hit"

    def test_slow_ms_knob_fills_the_slow_query_log(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True, slow_ms=0.0)
        conn.execute("SELECT a FROM R")
        entries = engine.tracer.slow_queries()
        assert len(entries) == 1
        assert entries[0].sql == "SELECT a FROM R"
        assert entries[0].version == "v1"
        # A second connection without the knob logs nothing.
        other = repro.connect(engine, "v1", autocommit=True)
        other.execute("SELECT b FROM R")
        assert len(engine.tracer.slow_queries()) == 1

    def test_slow_statements_counter_tracks_the_log(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True, slow_ms=0.0)
        conn.execute("SELECT a FROM R")
        conn.execute("SELECT b FROM R")
        counter = engine.metrics.get("repro_slow_statements_total")
        assert counter.value(version="v1") == 2

    def test_failed_statement_counts_as_error_and_closes_the_trace(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True, trace=True)
        cursor = conn.cursor()
        with pytest.raises(repro.errors.ProgrammingError):
            cursor.execute("SELECT nope FROM R")
        assert cursor.trace is not None
        assert cursor.trace.root.attributes["error"] is True
        errors = engine.metrics.get("repro_statement_errors_total")
        assert errors.value(version="v1") == 1

    def test_statement_latency_lands_in_the_labeled_histogram(self):
        engine = build_engine()
        conn = repro.connect(engine, "v1", autocommit=True)
        conn.execute("SELECT a FROM R")
        conn.execute("SELECT a FROM R")
        latency = engine.metrics.get("repro_statement_latency_seconds")
        assert latency.series_stats(version="v1", kind="select",
                                    cache="miss")["count"] == 1
        assert latency.series_stats(version="v1", kind="select",
                                    cache="hit")["count"] == 1
