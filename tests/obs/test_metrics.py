"""Registry, counter/gauge/histogram semantics, and text exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestRegistration:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help", ("op",))
        b = registry.counter("x_total", "other help", ("op",))
        assert a is b

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "", ("op",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "", ("kind",))

    def test_get_unknown_is_none(self):
        assert MetricsRegistry().get("nope") is None


class TestCounter:
    def test_inc_and_value_per_label_combination(self):
        counter = MetricsRegistry().counter("c_total", "", ("op",))
        counter.inc(op="a")
        counter.inc(2, op="a")
        counter.inc(op="b")
        assert counter.value(op="a") == 3
        assert counter.value(op="b") == 1
        assert counter.values() == {("a",): 3, ("b",): 1}

    def test_integer_increments_stay_int(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc()
        assert counter.value() == 2
        assert isinstance(counter.value(), int)

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_raise(self):
        counter = MetricsRegistry().counter("c_total", "", ("op",))
        with pytest.raises(ValueError):
            counter.inc(kind="x")
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_unset_series_reads_zero(self):
        assert MetricsRegistry().gauge("g").value() == 0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", "", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        payload = histogram.snapshot()["series"][0]
        assert payload["count"] == 5
        assert payload["sum"] == pytest.approx(56.05)
        # Buckets are cumulative; +Inf equals the total count.
        assert payload["buckets"] == [
            [0.1, 1],
            [1.0, 3],
            [10.0, 4],
            ["+Inf", 5],
        ]

    def test_boundary_value_counts_into_its_bucket(self):
        histogram = MetricsRegistry().histogram("h_seconds", "", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1.0" means <= 1.0
        assert histogram.snapshot()["series"][0]["buckets"][0] == [1.0, 1]

    def test_series_stats(self):
        histogram = MetricsRegistry().histogram("h_seconds", "", ("kind",))
        assert histogram.series_stats(kind="x") == {"count": 0, "sum": 0.0}
        histogram.observe(0.25, kind="x")
        stats = histogram.series_stats(kind="x")
        assert stats["count"] == 1
        assert stats["sum"] == pytest.approx(0.25)

    def test_default_buckets_cover_sub_millisecond_to_ten_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestDisabledRegistry:
    def test_writes_are_no_ops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h_seconds")
        counter.inc()
        gauge.set(7)
        histogram.observe(0.5)
        assert counter.value() == 0
        assert gauge.value() == 0
        assert histogram.series_stats() == {"count": 0, "sum": 0.0}

    def test_reenabling_resumes_collection(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        counter.inc()
        registry.enabled = True
        counter.inc()
        assert counter.value() == 1


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "Requests.", ("op",))
        counter.inc(op="execute")
        gauge = registry.gauge("clients", "Clients.")
        gauge.set(2)
        text = registry.render_prometheus()
        assert "# HELP req_total Requests.\n# TYPE req_total counter\n" in text
        assert 'req_total{op="execute"} 1\n' in text
        assert "# TYPE clients gauge\n" in text
        assert "clients 2\n" in text
        assert text.endswith("\n")

    def test_histogram_rendering_has_inf_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "H.", buckets=(0.5, 1.0))
        histogram.observe(0.75)
        lines = registry.render_prometheus().splitlines()
        assert 'h_seconds_bucket{le="0.5"} 0' in lines
        assert 'h_seconds_bucket{le="1"} 1' in lines
        assert 'h_seconds_bucket{le="+Inf"} 1' in lines
        assert "h_seconds_sum 0.75" in lines
        assert "h_seconds_count 1" in lines

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "", ("sql",))
        counter.inc(sql='SELECT "a"\nFROM t\\x')
        text = registry.render_prometheus()
        assert '{sql="SELECT \\"a\\"\\nFROM t\\\\x"}' in text

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "", ("op",)).inc(op="a")
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds").observe(0.01)
        round_tripped = json.loads(json.dumps(registry.snapshot()))
        assert round_tripped["c_total"]["type"] == "counter"
        assert round_tripped["h_seconds"]["series"][0]["buckets"][-1][0] == "+Inf"
