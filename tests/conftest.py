"""Shared fixtures: small TasKy scenarios in each materialization."""

from __future__ import annotations

import pytest

from repro.workloads.tasky import build_tasky

PAPER_ROWS = [
    ("Ann", "Organize party", 3),
    ("Ben", "Learn for exam", 2),
    ("Ann", "Write paper", 1),
    ("Ben", "Clean room", 1),
]


def build_paper_tasky():
    """The exact four-row database of Figure 1."""
    scenario = build_tasky(0)
    for author, task, prio in PAPER_ROWS:
        scenario.tasky.insert("Task", {"author": author, "task": task, "prio": prio})
    return scenario


@pytest.fixture
def paper_tasky():
    return build_paper_tasky()


@pytest.fixture(params=["TasKy", "Do!", "TasKy2"])
def materialized_paper_tasky(request):
    scenario = build_paper_tasky()
    scenario.materialize(request.param)
    return scenario
