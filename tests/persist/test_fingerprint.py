"""Deterministic schema fingerprints: stability, sensitivity, dedup."""

from __future__ import annotations

import repro
from repro.backend.sqlite import LiveSqliteBackend
from repro.persist.fingerprint import (
    catalog_fingerprint,
    engine_layout,
    layout_fingerprint,
    sqlite_layout,
    version_fingerprint,
)

SCRIPT = """
CREATE SCHEMA VERSION v1 WITH
CREATE TABLE R(a INTEGER, b TEXT);
CREATE SCHEMA VERSION v2 FROM v1 WITH
RENAME COLUMN a IN R TO aa;
"""


def build(script: str = SCRIPT) -> repro.InVerDa:
    engine = repro.InVerDa()
    engine.execute(script)
    return engine


class TestVersionFingerprint:
    def test_deterministic_across_engines(self):
        a, b = build(), build()
        for name in a.version_names():
            assert version_fingerprint(
                a.genealogy.schema_version(name)
            ) == version_fingerprint(b.genealogy.schema_version(name))

    def test_sensitive_to_column_rename(self):
        engine = build()
        v1 = engine.genealogy.schema_version("v1")
        v2 = engine.genealogy.schema_version("v2")
        assert version_fingerprint(v1) != version_fingerprint(v2)

    def test_identical_shapes_share_fingerprint(self):
        engine = build(
            SCRIPT + "CREATE SCHEMA VERSION v3 FROM v2 WITH RENAME COLUMN aa IN R TO a;"
        )
        v1 = engine.genealogy.schema_version("v1")
        v3 = engine.genealogy.schema_version("v3")
        assert version_fingerprint(v1) == version_fingerprint(v3)

    def test_hex_sha256_shape(self):
        engine = build()
        fp = version_fingerprint(engine.genealogy.schema_version("v1"))
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex


class TestCatalogFingerprint:
    def test_moves_on_every_transition(self):
        engine = build()
        seen = {catalog_fingerprint(engine)}
        engine.execute("CREATE SCHEMA VERSION v3 FROM v2 WITH ADD COLUMN c AS 1 INTO R;")
        seen.add(catalog_fingerprint(engine))
        engine.execute("MATERIALIZE 'v3';")
        seen.add(catalog_fingerprint(engine))
        engine.drop_schema_version("v1")
        seen.add(catalog_fingerprint(engine))
        assert len(seen) == 4

    def test_memoized_method_matches_module_function(self):
        engine = build()
        assert engine.catalog_fingerprint() == catalog_fingerprint(engine)
        # memo invalidates on the next transition
        engine.execute("MATERIALIZE 'v2';")
        assert engine.catalog_fingerprint() == catalog_fingerprint(engine)

    def test_deterministic_across_engines(self):
        assert catalog_fingerprint(build()) == catalog_fingerprint(build())


class TestLayoutFingerprint:
    def test_layout_matches_live_sqlite(self):
        engine = build()
        backend = LiveSqliteBackend.attach(engine)
        try:
            expected = engine_layout(engine)
            actual = sqlite_layout(backend.connection, list(expected))
            assert expected == actual
            assert layout_fingerprint(expected) == layout_fingerprint(actual)
        finally:
            backend.close()

    def test_layout_moves_with_materialization(self):
        engine = build()
        before = layout_fingerprint(engine_layout(engine))
        engine.execute("MATERIALIZE 'v2';")
        assert layout_fingerprint(engine_layout(engine)) != before
