"""Recovering engines from persisted catalogs: replay, verify, reuse."""

from __future__ import annotations

import pytest

import repro
from repro.backend import codegen
from repro.backend.sqlite import LiveSqliteBackend
from repro.errors import CatalogCorruptError, CatalogError
from repro.workloads.tasky import build_tasky

SCRIPT = """
CREATE SCHEMA VERSION v1 WITH
CREATE TABLE R(a INTEGER, b TEXT);
CREATE SCHEMA VERSION v2 FROM v1 WITH
ADD COLUMN c AS a * 2 INTO R;
"""


def build_tasky_file(path: str):
    scenario = build_tasky(20)
    backend = LiveSqliteBackend.attach(scenario.engine, database=path)
    backend.close()
    return scenario.engine


class TestReopen:
    def test_serves_every_version_with_data(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        original = build_tasky_file(path)
        engine = repro.open(path)
        try:
            assert engine.version_names() == original.version_names()
            for name in engine.version_names():
                assert engine.genealogy.schema_version(name).describe() == (
                    original.genealogy.schema_version(name).describe()
                )
            conn = repro.connect(engine, "TasKy")
            assert len(conn.execute("SELECT author, task FROM Task").fetchall()) == 20
            conn.close()
        finally:
            engine.live_backend.close()

    def test_version_order_survives_restart(self, tmp_path):
        # Regression: genealogy iteration is insertion-ordered, and the
        # persisted catalog must preserve it — a name-sorted order would
        # reshuffle fingerprints and log positions between runs.
        path = str(tmp_path / "tasky.db")
        original = build_tasky_file(path)
        assert original.version_names() == ["TasKy", "Do!", "TasKy2"]
        engine = repro.open(path)
        try:
            assert engine.version_names() == ["TasKy", "Do!", "TasKy2"]
            assert engine.catalog_fingerprint() == original.catalog_fingerprint()
            assert engine.catalog_generation == original.catalog_generation
        finally:
            engine.live_backend.close()

    def test_recovery_survives_materialization_and_drop(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        scenario = build_tasky(10)
        backend = LiveSqliteBackend.attach(scenario.engine, database=path)
        scenario.engine.execute("MATERIALIZE 'TasKy2';")
        scenario.engine.drop_schema_version("TasKy")
        backend.close()
        engine = repro.open(path)
        try:
            assert engine.version_names() == ["Do!", "TasKy2"]
            assert {
                smo.uid for smo in engine.genealogy.evolution_smos() if smo.materialized
            } == {
                smo.uid
                for smo in scenario.engine.genealogy.evolution_smos()
                if smo.materialized
            }
            conn = repro.connect(engine, "TasKy2")
            assert len(conn.execute("SELECT task, prio FROM Task").fetchall()) == 10
            conn.close()
        finally:
            engine.live_backend.close()

    def test_open_missing_file_with_create_false(self, tmp_path):
        with pytest.raises(CatalogError, match="no persisted catalog"):
            repro.open(str(tmp_path / "nope.db"), create=False)

    def test_open_starts_empty_then_persists(self, tmp_path):
        path = str(tmp_path / "grow.db")
        engine = repro.open(path)
        engine.execute(SCRIPT)
        engine.live_backend.close()
        again = repro.open(path, create=False)
        try:
            assert again.version_names() == ["v1", "v2"]
        finally:
            again.live_backend.close()


class TestDeltaCodeReuse:
    def test_reopen_reuses_views_without_duplicates(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        build_tasky_file(path)
        engine = repro.open(path)
        backend = engine.live_backend
        try:
            assert backend.recovered
            assert backend.delta_reused
            views, triggers = codegen.generated_object_names(backend.connection)
            engine2 = None
            backend.close()
            engine2 = repro.open(path)
            backend2 = engine2.live_backend
            try:
                assert backend2.delta_reused
                assert (
                    codegen.generated_object_names(backend2.connection)
                    == (views, triggers)
                )
            finally:
                backend2.close()
        finally:
            if not backend._closed:
                backend.close()

    def test_flatten_change_regenerates(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        build_tasky_file(path)
        engine = repro.open(path, flatten=False)
        try:
            backend = engine.live_backend
            assert backend.recovered and not backend.delta_reused
            conn = repro.connect(engine, "Do!")
            conn.execute("SELECT author, task FROM Todo").fetchall()
            conn.close()
        finally:
            engine.live_backend.close()

    def test_reattach_same_engine_is_idempotent(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        scenario = build_tasky(5)
        backend = LiveSqliteBackend.attach(scenario.engine, database=path)
        views, triggers = codegen.generated_object_names(backend.connection)
        backend.close()
        again = LiveSqliteBackend.attach(scenario.engine, database=path)
        try:
            assert again.recovered and again.delta_reused
            assert codegen.generated_object_names(again.connection) == (views, triggers)
            conn = repro.connect(scenario.engine, "TasKy", backend=again)
            assert len(conn.execute("SELECT author, task FROM Task").fetchall()) == 5
            conn.close()
        finally:
            again.close()

    def test_reattach_different_catalog_refused(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        build_tasky_file(path)
        other = repro.InVerDa()
        other.execute(SCRIPT)
        with pytest.raises(CatalogError, match="different catalog"):
            LiveSqliteBackend.attach(other, database=path)


class TestCorruption:
    def _corrupt(self, path: str) -> str:
        """Drop one physical data table behind the catalog's back."""
        import sqlite3

        connection = sqlite3.connect(path)
        (name,) = connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name LIKE 'd_%' ORDER BY name LIMIT 1"
        ).fetchone()
        connection.executescript(f'DROP TABLE "{name}"')
        connection.close()
        return name

    def test_missing_table_detected(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        build_tasky_file(path)
        name = self._corrupt(path)
        with pytest.raises(CatalogCorruptError, match=name):
            repro.open(path)

    def test_repair_recreates_missing_table_empty(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        build_tasky_file(path)
        self._corrupt(path)
        engine = repro.open(path, repair=True)
        try:
            conn = repro.connect(engine, "TasKy")
            conn.execute("SELECT author, task, prio FROM Task").fetchall()
            conn.close()
        finally:
            engine.live_backend.close()

    def test_force_skips_verification(self, tmp_path):
        path = str(tmp_path / "tasky.db")
        build_tasky_file(path)
        self._corrupt(path)
        engine = repro.open(path, force=True)
        assert engine.version_names() == ["TasKy", "Do!", "TasKy2"]
        engine.live_backend.close()


class TestMultiProcess:
    def test_second_opener_sees_catalog_move(self, tmp_path):
        path = str(tmp_path / "shared.db")
        writer = repro.open(path)
        writer.execute(SCRIPT)
        reader = repro.open(path)
        try:
            assert reader.live_backend.catalog_stats()["stale"] is False
            writer.execute(
                "CREATE SCHEMA VERSION v3 FROM v2 WITH RENAME COLUMN b IN R TO bb;"
            )
            stats = reader.live_backend.catalog_stats()
            assert stats["on_disk_generation"] == writer.catalog_generation
            assert stats["on_disk_generation"] > reader.catalog_generation
            assert stats["stale"] is True
            assert writer.live_backend.catalog_stats()["stale"] is False
        finally:
            reader.live_backend.close()
            writer.live_backend.close()
