"""The acceptance property: randomized SMO chains and materializations,
evolved and written through a file-backed engine, survive process
restarts — after every ``repro.open`` the recovered side answers the
differential read/write suite identically to an in-memory engine that
never restarted."""

from __future__ import annotations

import random

import pytest

from repro.catalog.materialization import enumerate_valid_materializations
from tests.backend.test_differential import (
    CHAINS,
    WORDS,
    _apply_materialization,
    _fuzz_ops,
)
from tests.backend.util import DualSystem


@pytest.mark.parametrize("name", sorted(CHAINS))
def test_roundtrip_chain(tmp_path, name):
    create, load, evolutions = CHAINS[name]
    rng = random.Random(13)
    ds = DualSystem(database=str(tmp_path / "roundtrip.db"))
    try:
        ds.execute_ddl(f"CREATE SCHEMA VERSION v1 WITH {create};")
        ds.attach()
        for table, columns in load.items():
            rows = [
                tuple(
                    rng.choice(WORDS)
                    if c in ("author", "task", "w", "word")
                    else rng.randint(0, 6)
                    for c in columns
                )
                for _ in range(6)
            ]
            ds.runmany(
                "v1",
                f"INSERT INTO {table}({', '.join(columns)}) "
                f"VALUES ({', '.join('?' for _ in columns)})",
                rows,
            )
        for step, evolution in enumerate(evolutions, start=2):
            source = f"v{step - 1}"
            if isinstance(evolution, tuple):
                evolution, source = evolution
            ds.execute_ddl(
                f"CREATE SCHEMA VERSION v{step} FROM {source} WITH {evolution};"
            )
        ds.reopen()
        ds.check(f"{name}/reopen-after-evolutions")
        _fuzz_ops(ds, rng, 6, f"{name}/post-reopen")

        schemas = enumerate_valid_materializations(ds.mem.genealogy)
        indexes = [0] if len(schemas) == 1 else [0, len(schemas) - 1]
        for index in indexes:
            _apply_materialization(ds, index)
            ds.reopen()
            ds.check(f"{name}/reopen-after-mat-{index}")
            _fuzz_ops(ds, rng, 4, f"{name}/mat-{index}")

        ds.reopen()
        ds.check(f"{name}/final")
    finally:
        ds.close()
