"""The ``_repro_catalog_*`` tables: snapshot, live recording, loading."""

from __future__ import annotations

import json
import sqlite3

import pytest

import repro
from repro.backend.sqlite import LiveSqliteBackend
from repro.errors import CatalogError
from repro.persist.store import (
    FORMAT_VERSION,
    META_TABLE,
    SCHEMAS_TABLE,
    CatalogStore,
    snapshot_entries,
)

SCRIPT = """
CREATE SCHEMA VERSION v1 WITH
CREATE TABLE R(a INTEGER, b TEXT);
CREATE SCHEMA VERSION v2 FROM v1 WITH
RENAME COLUMN a IN R TO aa;
CREATE SCHEMA VERSION v3 FROM v2 WITH
RENAME COLUMN aa IN R TO a;
MATERIALIZE 'v2';
"""


def build() -> repro.InVerDa:
    engine = repro.InVerDa()
    engine.execute(SCRIPT)
    return engine


def snapshot_store(engine) -> CatalogStore:
    store = CatalogStore(sqlite3.connect(":memory:"))
    store.save_snapshot(engine)
    return store


class TestSnapshotRoundTrip:
    def test_load_returns_what_was_saved(self):
        engine = build()
        state = snapshot_store(engine).load()
        assert state.format_version == FORMAT_VERSION
        assert state.generation == engine.catalog_generation
        assert state.fingerprint == engine.catalog_fingerprint()
        assert [e["kind"] for e in state.entries] == [
            "evolution",
            "evolution",
            "evolution",
            "materialize",
        ]
        assert [v.name for v in state.versions] == ["v1", "v2", "v3"]
        assert [v.parent for v in state.versions] == [None, "v1", "v2"]
        assert not any(v.dropped for v in state.versions)

    def test_drop_is_recorded(self):
        engine = build()
        engine.drop_schema_version("v1")
        state = snapshot_store(engine).load()
        record = next(v for v in state.versions if v.name == "v1")
        assert record.dropped

    def test_schema_snapshots_dedup_by_fingerprint(self):
        # v1 and v3 have identical table shapes: one shared snapshot row.
        store = snapshot_store(build())
        state = store.load()
        (count,) = store.connection.execute(
            f"SELECT COUNT(*) FROM {SCHEMAS_TABLE}"
        ).fetchone()
        assert len(state.versions) == 3
        assert count == 2

    def test_has_catalog(self):
        connection = sqlite3.connect(":memory:")
        assert not CatalogStore.has_catalog(connection)
        CatalogStore(connection).save_snapshot(build())
        assert CatalogStore.has_catalog(connection)

    def test_newer_format_version_refused(self):
        store = snapshot_store(build())
        store.connection.execute(
            f"UPDATE {META_TABLE} SET value = ? WHERE key = 'format_version'",
            (json.dumps(FORMAT_VERSION + 1),),
        )
        with pytest.raises(CatalogError, match="newer"):
            store.load()


class TestLiveRecording:
    def test_hooks_record_the_same_log_as_a_snapshot(self):
        # An engine persisting from birth (hooks append to the log one
        # transition at a time) ends up with the same entries a one-shot
        # snapshot of its final state would synthesize.
        engine = repro.InVerDa()
        backend = LiveSqliteBackend.attach(engine)
        try:
            engine.execute(SCRIPT)
            recorded = backend.store.load()
            assert recorded.entries == [
                {"kind": kind, **payload}
                for kind, payload in snapshot_entries(engine)
            ]
            assert recorded.generation == engine.catalog_generation
            assert recorded.fingerprint == engine.catalog_fingerprint()
        finally:
            backend.close()

    def test_delta_meta_tracks_generation(self):
        engine = repro.InVerDa()
        backend = LiveSqliteBackend.attach(engine)
        try:
            engine.execute(SCRIPT)
            state = backend.store.load()
            assert state.delta_generation == engine.catalog_generation
            assert state.delta_flatten is True
        finally:
            backend.close()

    def test_persist_false_leaves_no_catalog(self):
        engine = build()
        backend = LiveSqliteBackend.attach(engine, persist=False)
        try:
            assert backend.store is None
            assert not CatalogStore.has_catalog(backend.connection)
        finally:
            backend.close()
