"""Catalog durability facts surfaced through stats() and server status."""

from __future__ import annotations

import repro
from repro.backend.sqlite import LiveSqliteBackend
from repro.server.client import connect_remote
from repro.server.server import ReproServer

SCRIPT = """
CREATE SCHEMA VERSION v1 WITH
CREATE TABLE R(a INTEGER, b TEXT);
CREATE SCHEMA VERSION v2 FROM v1 WITH
RENAME COLUMN a IN R TO aa;
"""


def build() -> repro.InVerDa:
    engine = repro.InVerDa()
    engine.execute(SCRIPT)
    return engine


class TestLocalStats:
    def test_memory_engine_reports_generation_and_fingerprint(self):
        engine = build()
        conn = repro.connect(engine, "v1")
        try:
            catalog = conn.stats()["catalog"]
            assert catalog["generation"] == engine.catalog_generation
            assert catalog["fingerprint"] == engine.catalog_fingerprint()
        finally:
            conn.close()

    def test_live_backend_reports_durability(self, tmp_path):
        engine = build()
        backend = LiveSqliteBackend.attach(engine, database=str(tmp_path / "s.db"))
        conn = repro.connect(engine, "v1", backend=backend)
        try:
            catalog = conn.stats()["catalog"]
            assert catalog["persisted"] is True
            assert catalog["recovered"] is False
            assert catalog["generation"] == engine.catalog_generation
            assert catalog["on_disk_generation"] == engine.catalog_generation
            assert catalog["stale"] is False
            assert len(catalog["fingerprint"]) == 64
        finally:
            conn.close()
            backend.close()

    def test_generation_moves_with_the_catalog(self):
        engine = build()
        conn = repro.connect(engine, "v1")
        try:
            before = conn.stats()["catalog"]
            engine.execute("MATERIALIZE 'v2';")
            after = conn.stats()["catalog"]
            assert after["generation"] == before["generation"] + 1
            assert after["fingerprint"] != before["fingerprint"]
        finally:
            conn.close()


class TestRemoteStats:
    def test_status_and_client_stats_expose_catalog(self, tmp_path):
        engine = build()
        backend = LiveSqliteBackend.attach(engine, database=str(tmp_path / "r.db"))
        try:
            with ReproServer(engine, backend=backend) as server:
                status = server.status()
                assert status["catalog"]["generation"] == engine.catalog_generation
                assert status["catalog"]["fingerprint"] == engine.catalog_fingerprint()
                conn = connect_remote(*server.address, "v1", timeout=30.0)
                try:
                    catalog = conn.stats()["catalog"]
                    assert catalog == status["catalog"]
                finally:
                    conn.close()
        finally:
            backend.close()
