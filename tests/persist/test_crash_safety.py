"""Fault-injected crashes mid-transition: the reopened database must be
wholly before or wholly after the transition — never torn — and must
answer every version identically to an in-memory engine that never
crashed."""

from __future__ import annotations

import pytest

from tests.backend.util import DualSystem


class SimulatedCrash(Exception):
    pass


def injector(point: str):
    def inject(reached: str) -> None:
        if reached == point:
            raise SimulatedCrash(point)

    return inject


def build(tmp_path) -> DualSystem:
    ds = DualSystem(database=str(tmp_path / "crash.db"))
    ds.execute_ddl(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b INTEGER);"
    )
    ds.attach()
    ds.runmany("v1", "INSERT INTO R(a, b) VALUES (?, ?)", [(i, i * 2) for i in range(6)])
    ds.execute_ddl("CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + b INTO R;")
    ds.check("built")
    return ds


EVOLUTION = "CREATE SCHEMA VERSION v3 FROM v2 WITH SPLIT TABLE R INTO Odd WITH a % 2 = 1;"


@pytest.mark.parametrize(
    "point", ["evolution:after-catalog", "evolution:before-commit"]
)
def test_crash_mid_evolution(tmp_path, point):
    ds = build(tmp_path)
    try:
        ds.backend.fault_injector = injector(point)
        with pytest.raises(SimulatedCrash):
            ds.sq.execute(EVOLUTION)
        # Reopen the file: the aborted transition must have left no trace,
        # so the recovered side still matches an engine that never saw it.
        ds.reopen()
        ds.check(f"recovered-after-{point}")
        # The catalog is fully functional: the same evolution now succeeds
        # on both sides, with identical uids (physical names line up).
        ds.execute_ddl(EVOLUTION)
        ds.check(f"evolved-after-{point}")
        ds.run("v3", "INSERT INTO Odd(a, b, c) VALUES (?, ?, ?)", (1, 1, 2))
        ds.check(f"written-after-{point}")
    finally:
        ds.close()


@pytest.mark.parametrize(
    "point",
    ["materialize:staged", "materialize:swapped", "materialize:before-commit"],
)
def test_crash_mid_materialize(tmp_path, point):
    ds = build(tmp_path)
    try:
        ds.backend.fault_injector = injector(point)
        with pytest.raises(SimulatedCrash):
            ds.sq.execute("MATERIALIZE 'v2';")
        ds.reopen()
        ds.check(f"recovered-after-{point}")
        ds.materialize("v2")
        ds.check(f"materialized-after-{point}")
        ds.run("v1", "INSERT INTO R(a, b) VALUES (?, ?)", (9, 9))
        ds.run("v2", "DELETE FROM R WHERE a = ?", (0,))
        ds.check(f"written-after-{point}")
    finally:
        ds.close()


def test_crash_mid_drop(tmp_path):
    ds = build(tmp_path)
    try:
        ds.materialize("v2")
        ds.check("materialized")
        ds.backend.fault_injector = injector("drop:before-commit")
        with pytest.raises(SimulatedCrash):
            ds.sq.drop_schema_version("v1")
        ds.reopen()
        ds.check("recovered-after-drop-crash")
        assert ds.sq.version_names() == ["v1", "v2"]
        for conn in (*ds._mem_conns.values(), *ds._sq_conns.values()):
            conn.close()
        ds._mem_conns.clear()
        ds._sq_conns.clear()
        ds.mem.drop_schema_version("v1")
        ds.sq.drop_schema_version("v1")
        ds.check("dropped-after-crash")
    finally:
        ds.close()


def test_generation_never_torn(tmp_path):
    """After a crash the on-disk generation equals a generation the
    engine actually committed — never an in-between value."""
    ds = build(tmp_path)
    try:
        committed = ds.sq.catalog_generation
        ds.backend.fault_injector = injector("evolution:before-commit")
        with pytest.raises(SimulatedCrash):
            ds.sq.execute(EVOLUTION)
        ds.reopen()
        assert ds.sq.catalog_generation == committed
        assert ds.backend.on_disk_generation() == committed
        assert ds.sq.catalog_fingerprint() == ds.backend.store.load().fingerprint
    finally:
        ds.close()
