"""Online ``MATERIALIZE``: journaled backfill, crash-resume, change capture.

A seeded crash at every fault point in the online pipeline — prepare,
each chunk boundary, the pre-cutover verification, and the offline
cutover points the online path reuses — must converge through
``repro.open()`` to a state differentially identical to an engine that
never crashed.  The in-memory oracle side of :class:`DualSystem` has no
live backend, so ``MATERIALIZE ONLINE`` falls back to the offline path
there; the visible contents of every schema version are materialization-
independent, which is exactly what ``ds.check()`` asserts.
"""

from __future__ import annotations

import pytest

import repro
from repro.backend import online
from repro.backend.sqlite import LiveSqliteBackend
from repro.bidel.ast import Materialize
from repro.bidel.parser import parse_script
from repro.check.delta import verify_transitional_objects
from repro.errors import CatalogError
from repro.testing import DualSystem, InjectedFault, one_shot

ONLINE_FAULT_POINTS = [
    # Raised before the prepare transaction commits: the journal never
    # lands, so recovery sees nothing and the move simply never happened.
    "materialize-online:prepared",
    # Raised before a chunk's transaction commits: the journal carries
    # the previous chunk's cursor and recovery resumes from there.
    "materialize-online:chunk",
    # Raised after tail copy + final repair, inside the cutover
    # transaction: everything rolls back to the last committed chunk.
    "materialize-online:pre-cutover",
    # The offline cutover fault points, reused by the online swap.
    "materialize:staged",
    "materialize:swapped",
    "materialize:before-commit",
]


class OnlineDual(DualSystem):
    """DualSystem whose SQLite side pins a flatten mode across reopens."""

    def __init__(self, database: str, *, flatten: bool = True):
        super().__init__(database)
        self.flatten = flatten

    def attach(self) -> None:
        if self.backend is None:
            self.backend = LiveSqliteBackend.attach(
                self.sq, database=self.database, flatten=self.flatten
            )

    def reopen(self, **open_options) -> None:
        for conn in self._sq_conns.values():
            conn.close()
        self._sq_conns.clear()
        if self.backend is not None:
            self.backend.close()
        self.sq = repro.open(self.database, flatten=self.flatten, **open_options)
        self.backend = self.sq.live_backend


def build(tmp_path, *, flatten: bool = True) -> OnlineDual:
    ds = OnlineDual(str(tmp_path / "online.db"), flatten=flatten)
    ds.execute_ddl(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b INTEGER);"
    )
    ds.attach()
    ds.runmany(
        "v1", "INSERT INTO R(a, b) VALUES (?, ?)", [(i, i * 2) for i in range(40)]
    )
    ds.execute_ddl(
        "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + b INTO R;"
    )
    ds.check("built")
    return ds


def transitional_leftovers(backend) -> list[str]:
    rows = backend.connection.execute(
        "SELECT name FROM sqlite_master WHERE type IN ('table', 'trigger')"
    ).fetchall()
    return sorted(name for (name,) in rows if online.is_transitional(name))


def assert_clean(ds: OnlineDual, context: str) -> None:
    assert ds.backend.store.read_backfill() is None, (
        f"[{context}] backfill journal not cleared"
    )
    leftovers = transitional_leftovers(ds.backend)
    assert leftovers == [], f"[{context}] transitional leftovers: {leftovers}"


@pytest.mark.parametrize("flatten", [True, False], ids=["flat", "nested"])
class TestOnlineMove:
    def test_matches_offline_semantics(self, tmp_path, flatten):
        ds = build(tmp_path, flatten=flatten)
        try:
            ds.execute_ddl("MATERIALIZE ONLINE 'v2';")
            ds.check("moved")
            assert_clean(ds, "moved")
            # Writes on either version still propagate after the cutover.
            ds.run("v1", "INSERT INTO R(a, b) VALUES (?, ?)", (100, 200))
            ds.run("v2", "DELETE FROM R WHERE a = ?", (0,))
            ds.check("written-after-move")
        finally:
            ds.close()

    @pytest.mark.parametrize("point", ONLINE_FAULT_POINTS)
    def test_crash_resumes_through_open(self, tmp_path, flatten, point):
        ds = build(tmp_path, flatten=flatten)
        try:
            ds.backend.fault_injector = one_shot(point)
            with pytest.raises(InjectedFault):
                ds.sq.execute("MATERIALIZE ONLINE 'v2';")
            # Reopen: recovery either resumes the journaled move to
            # completion or (no journal committed yet) finds nothing.
            # Both converge to a clean, fully serving catalog.
            ds.reopen()
            assert_clean(ds, f"recovered-after-{point}")
            ds.check(f"recovered-after-{point}")
            ds.run("v1", "INSERT INTO R(a, b) VALUES (?, ?)", (500, 501))
            ds.run("v2", "DELETE FROM R WHERE a = ?", (1,))
            ds.check(f"written-after-{point}")
        finally:
            ds.close()


def crash_mid_backfill(ds: OnlineDual) -> None:
    """Drive the SQLite side into a torn move with a committed journal."""
    ds.backend.fault_injector = one_shot("materialize-online:pre-cutover")
    with pytest.raises(InjectedFault):
        ds.sq.execute("MATERIALIZE ONLINE 'v2';")


class TestResumePolicy:
    def test_resume_false_rolls_back(self, tmp_path):
        ds = build(tmp_path)
        try:
            before = {
                smo.uid
                for smo in ds.sq.genealogy.evolution_smos()
                if smo.materialized
            }
            crash_mid_backfill(ds)
            ds.reopen(resume_backfill=False)
            assert_clean(ds, "rolled-back")
            after = {
                smo.uid
                for smo in ds.sq.genealogy.evolution_smos()
                if smo.materialized
            }
            assert after == before, "rollback must not change the materialization"
            ds.check("rolled-back")
            # The move can be retried from scratch and now completes.
            ds.sq.execute("MATERIALIZE ONLINE 'v2';")
            ds.mem.execute("MATERIALIZE 'v2';")
            ds.check("retried")
            assert_clean(ds, "retried")
        finally:
            ds.close()

    def test_resume_none_leaves_move_untouched(self, tmp_path):
        ds = build(tmp_path)
        try:
            crash_mid_backfill(ds)
            # Static inspection: the journal and every transitional
            # object survive the open untouched...
            ds.reopen(resume_backfill=None)
            record = ds.backend.store.read_backfill()
            assert record is not None and record.phase == "backfill"
            assert transitional_leftovers(ds.backend) != []
            # ...and RPC107 accepts exactly the objects the plan names.
            findings = verify_transitional_objects(
                ds.backend.connection, ds.backend.store
            )
            assert findings == [], [f.message for f in findings]
            # A later default open resumes the journaled move to the end.
            ds.reopen()
            assert_clean(ds, "resumed")
            assert any(
                smo.materialized for smo in ds.sq.genealogy.evolution_smos()
            ), "resumed move did not cut over to v2"
            ds.check("resumed")
        finally:
            ds.close()

    def test_stale_journal_is_rolled_back(self, tmp_path):
        ds = build(tmp_path)
        try:
            crash_mid_backfill(ds)
            # Open without touching the move, then evolve: the catalog
            # generation advances past the journal's, making it stale.
            ds.reopen(resume_backfill=None)
            ds.execute_ddl(
                "CREATE SCHEMA VERSION v3 FROM v2 WITH RENAME COLUMN c IN R TO d;"
            )
            ds.reopen()
            assert_clean(ds, "stale-rolled-back")
            ds.check("stale-rolled-back")
        finally:
            ds.close()


class TestChangeCapture:
    def test_live_writes_between_chunks_are_captured(self, tmp_path):
        """White-box: drive the chunk loop by hand, interleaving writes.

        Every write landing between two chunk commits must be repaired
        into the staging tables before the cutover swaps them in.
        """
        database = str(tmp_path / "capture.db")
        engine = repro.InVerDa()
        engine.execute(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b INTEGER);"
        )
        backend = LiveSqliteBackend.attach(engine, database=database)
        try:
            conn = repro.connect(engine, "v1", autocommit=True, backend=backend)
            conn.executemany(
                "INSERT INTO R(a, b) VALUES (?, ?)", [(i, i) for i in range(400)]
            )
            engine.execute(
                "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + b INTO R;"
            )
            schema = engine._resolve_materialization(["v2"])
            backend.online_prepare(schema, chunk_rows=60)
            round_no = 0
            while True:
                done = backend.online_chunk()
                # Dirty the already-copied prefix *and* the tail, both of
                # which the per-chunk repair and cutover must reconcile.
                conn.execute(
                    "UPDATE R SET b = b + 1000 WHERE a = ?", (round_no,)
                )
                conn.execute("DELETE FROM R WHERE a = ?", (round_no + 200,))
                conn.execute(
                    "INSERT INTO R(a, b) VALUES (?, ?)",
                    (1000 + round_no, round_no),
                )
                round_no += 1
                if done:
                    break
            expected = sorted(
                conn.execute("SELECT a, b FROM R").fetchall()
            )
            engine.apply_materialization(schema)
            assert sorted(conn.execute("SELECT a, b FROM R").fetchall()) == expected
            chunks, rows = backend.online_progress()
            assert chunks == 0 and rows == 0, "progress must reset after cutover"
            assert backend.store.read_backfill() is None
            assert transitional_leftovers(backend) == []
            conn.close()
        finally:
            backend.close()

    def test_nontrackable_decompose_moves_online(self, tmp_path):
        """A DECOMPOSE target has shared auxiliary state, so its stages
        cannot be chunk-copied; the online path must still move it
        correctly by staging it whole at cutover."""
        ds = OnlineDual(str(tmp_path / "decompose.db"))
        try:
            ds.execute_ddl(
                "CREATE SCHEMA VERSION v1 WITH "
                "CREATE TABLE task(name TEXT, prio INTEGER, author TEXT);"
            )
            ds.attach()
            ds.runmany(
                "v1",
                "INSERT INTO task(name, prio, author) VALUES (?, ?, ?)",
                [(f"t{i}", i % 3, f"a{i % 5}") for i in range(30)],
            )
            ds.execute_ddl(
                "CREATE SCHEMA VERSION v2 FROM v1 WITH "
                "DECOMPOSE TABLE task INTO task(name, prio), author(author) "
                "ON FOREIGN KEY author;"
            )
            ds.backend.fault_injector = one_shot("materialize:staged")
            with pytest.raises(InjectedFault):
                ds.sq.execute("MATERIALIZE ONLINE 'v2';")
            ds.reopen()
            assert_clean(ds, "decompose-recovered")
            ds.check("decompose-recovered")
            ds.run("v2", "INSERT INTO task(name, prio) VALUES (?, ?)", ("new", 9))
            ds.check("decompose-written")
        finally:
            ds.close()


class TestGuardsAndDiagnostics:
    def test_ddl_is_fenced_while_backfill_runs(self, tmp_path):
        ds = build(tmp_path)
        try:
            # The engine raises CatalogError for catalog transitions that
            # would race an in-flight backfill; the flag is set under the
            # write lock by _materialize_online and cleared after cutover.
            ds.sq._online_materialize_active = True
            with pytest.raises(CatalogError, match="backfill is in flight"):
                ds.sq.execute(
                    "CREATE SCHEMA VERSION v3 FROM v2 WITH DROP COLUMN c FROM R DEFAULT 0;"
                )
            ds.sq._online_materialize_active = False
            ds.sq.execute("MATERIALIZE ONLINE 'v2';")
            ds.mem.execute("MATERIALIZE 'v2';")
            ds.check("after-fence")
        finally:
            ds.close()

    def test_rpc107_flags_orphaned_transitional_objects(self, tmp_path):
        ds = build(tmp_path)
        try:
            crash_mid_backfill(ds)
            ds.reopen(resume_backfill=None)
            # Tear out the journal row behind the verifier's back: every
            # staging table and capture trigger is now an orphan.
            from repro.persist.store import BACKFILL_TABLE

            ds.backend.connection.execute(f"DELETE FROM {BACKFILL_TABLE}")
            ds.backend.connection.commit()
            findings = verify_transitional_objects(
                ds.backend.connection, ds.backend.store
            )
            assert findings, "orphaned transitional objects must be flagged"
            assert {f.code for f in findings} == {"RPC107"}
            assert all(f.severity == "error" for f in findings)
        finally:
            ds.close()

    def test_memory_engine_falls_back_to_offline(self):
        engine = repro.InVerDa()
        engine.execute(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);\n"
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS a INTO R;\n"
            "MATERIALIZE ONLINE 'v2';"
        )
        assert any(
            smo.materialized for smo in engine.genealogy.evolution_smos()
        )


class TestCutoverHook:
    """``engine.online_cutover_hook`` wraps exactly the cutover window:
    at entry the backfill is complete but the move has not applied; after
    the wrapped body the target is materialized.  Callers use it to
    serialize external state (the soak harness orders its differential
    oplog with it — MATERIALIZE freezes derived-column payloads, so its
    position relative to concurrent writes is semantically significant)."""

    def test_hook_wraps_online_cutover(self, tmp_path):
        from contextlib import contextmanager

        ds = build(tmp_path)
        try:
            events = []

            def materialized() -> bool:
                return any(
                    smo.materialized for smo in ds.sq.genealogy.evolution_smos()
                )

            @contextmanager
            def hook():
                events.append(("enter", materialized()))
                yield
                events.append(("exit", materialized()))

            ds.sq.online_cutover_hook = hook
            ds.sq.execute("MATERIALIZE ONLINE 'v2';")
            assert events == [("enter", False), ("exit", True)]
            ds.check("moved-under-hook")
            assert_clean(ds, "moved-under-hook")
        finally:
            ds.close()

    def test_offline_move_never_enters_the_hook(self, tmp_path):
        ds = build(tmp_path)
        try:
            def hook():
                raise AssertionError("offline MATERIALIZE must not use the hook")

            ds.sq.online_cutover_hook = hook
            ds.sq.execute("MATERIALIZE 'v2';")
            ds.check("offline-no-hook")
        finally:
            ds.close()

    def test_cutover_fault_propagates_through_the_hook(self, tmp_path):
        from contextlib import contextmanager

        ds = build(tmp_path)
        try:
            entered = []

            @contextmanager
            def hook():
                entered.append(True)
                yield  # the fault below is raised inside this body

            ds.sq.online_cutover_hook = hook
            ds.backend.fault_injector = one_shot("materialize:staged")
            with pytest.raises(InjectedFault):
                ds.sq.execute("MATERIALIZE ONLINE 'v2';")
            assert entered == [True]
            ds.reopen()
            assert_clean(ds, "recovered-through-hook")
            ds.check("recovered-through-hook")
        finally:
            ds.close()


class TestParsing:
    def test_online_roundtrip(self):
        (stmt,) = parse_script("MATERIALIZE ONLINE 'v2';")
        assert isinstance(stmt, Materialize)
        assert stmt.online and stmt.targets == ("v2",)
        assert stmt.unparse() == "MATERIALIZE ONLINE 'v2';"
        (again,) = parse_script(stmt.unparse())
        assert again == stmt

    def test_offline_unchanged(self):
        (stmt,) = parse_script("MATERIALIZE 'v2';")
        assert not stmt.online
        assert stmt.unparse() == "MATERIALIZE 'v2';"
