"""The materialization advisor (the paper's 'imaginable' tool, Sec. 8.2)."""

import pytest

from repro.core.advisor import (
    WorkloadProfile,
    recommend_materialization,
    score_schema,
)
from repro.catalog.materialization import enumerate_valid_materializations
from tests.conftest import build_paper_tasky


@pytest.fixture
def genealogy():
    return build_paper_tasky().engine.genealogy


def _kinds(schema):
    return {smo.smo_type for smo in schema}


class TestRecommendations:
    def test_pure_tasky_workload_keeps_initial(self, genealogy):
        profile = WorkloadProfile(reads={"TasKy": 100}, writes={"TasKy": 50})
        recommendation = recommend_materialization(genealogy, profile)
        assert _kinds(recommendation.schema) == set()
        assert recommendation.physical_tables == ("Task",)

    def test_pure_tasky2_workload_moves_to_decomposed(self, genealogy):
        profile = WorkloadProfile(reads={"TasKy2": 100}, writes={"TasKy2": 50})
        recommendation = recommend_materialization(genealogy, profile)
        assert _kinds(recommendation.schema) == {"Decompose", "RenameColumn"}

    def test_pure_do_workload_moves_to_split(self, genealogy):
        profile = WorkloadProfile(reads={"Do!": 100}, writes={"Do!": 10})
        recommendation = recommend_materialization(genealogy, profile)
        assert _kinds(recommendation.schema) == {"Split", "DropColumn"}

    def test_mixed_workload_ranks_all_schemas(self, genealogy):
        profile = WorkloadProfile(reads={"TasKy": 50, "TasKy2": 50})
        recommendation = recommend_materialization(genealogy, profile)
        assert len(recommendation.ranking) == 5
        costs = [cost for cost, _ in recommendation.ranking]
        assert costs == sorted(costs)

    def test_zero_workload_prefers_smallest_schema(self, genealogy):
        recommendation = recommend_materialization(genealogy, WorkloadProfile())
        assert recommendation.cost == 0.0
        assert recommendation.schema == frozenset()


class TestCostModel:
    def test_matching_schema_costs_zero(self, genealogy):
        profile = WorkloadProfile(reads={"TasKy": 10})
        assert score_schema(genealogy, frozenset(), profile) == 0.0

    def test_distance_grows_along_chain(self, genealogy):
        profile = WorkloadProfile(reads={"Do!": 10})
        schemas = {
            frozenset(_kinds(s)): s for s in enumerate_valid_materializations(genealogy)
        }
        at_initial = score_schema(genealogy, schemas[frozenset()], profile)
        at_split = score_schema(genealogy, schemas[frozenset({"Split"})], profile)
        at_do = score_schema(
            genealogy, schemas[frozenset({"Split", "DropColumn"})], profile
        )
        assert at_do < at_split < at_initial

    def test_writes_cost_more_than_reads(self, genealogy):
        reads_only = WorkloadProfile(reads={"TasKy2": 10})
        writes_only = WorkloadProfile(writes={"TasKy2": 10})
        schema = frozenset()
        assert score_schema(genealogy, schema, writes_only) > score_schema(
            genealogy, schema, reads_only
        )

    def test_advisor_recommendation_actually_faster(self):
        """End to end: applying the recommendation speeds up the workload."""
        import time

        scenario = build_paper_tasky()
        for _ in range(200):
            scenario.tasky.insert(
                "Task", {"author": "X", "task": "bulk", "prio": 2}
            )
        profile = WorkloadProfile(reads={"TasKy2": 100})
        recommendation = recommend_materialization(
            scenario.engine.genealogy, profile
        )

        def read_cost():
            start = time.perf_counter()
            for _ in range(5):
                scenario.tasky2.select("Task")
            return time.perf_counter() - start

        before = read_cost()
        scenario.engine.apply_materialization(recommendation.schema)
        after = read_cost()
        assert after < before
