"""The paper's central claim as an executable property: running the same
operation sequence under different materialization schemas yields identical
visible states in every schema version (logical data independence)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.materialization import enumerate_valid_materializations
from tests.conftest import build_paper_tasky

AUTHORS = ["Ann", "Ben", "Cara"]
TASKS = ["alpha", "beta", "gamma", "delta"]


def visible_state(scenario):
    """Canonical visible contents of every version.

    Generated identifiers (the Author ids and the hidden tuple ids) are
    implementation-chosen and may differ between propagation paths, so the
    state is compared as content: TasKy2's foreign keys are resolved to
    author names and rows are order-normalized multisets.
    """
    by_id = {a["id"]: a["name"] for a in scenario.tasky2.select("Author")}
    return {
        "TasKy": sorted(
            (r["author"], r["task"], r["prio"]) for r in scenario.tasky.select("Task")
        ),
        "Do!": sorted((r["author"], r["task"]) for r in scenario.do.select("Todo")),
        "TasKy2.Task": sorted(
            (r["task"], r["prio"], by_id.get(r["author"]))
            for r in scenario.tasky2.select("Task")
        ),
        "TasKy2.Author": sorted(by_id.values()),
    }


def apply_operation(scenario, op, rng):
    kind = op[0]
    if kind == "insert_tasky":
        scenario.tasky.insert(
            "Task", {"author": op[1], "task": op[2], "prio": op[3]}
        )
    elif kind == "insert_do":
        scenario.do.insert("Todo", {"author": op[1], "task": op[2]})
    elif kind == "update_prio":
        scenario.tasky.update("Task", {"prio": op[2]}, f"task LIKE '%{op[1]}%'")
    elif kind == "update_author_via_tasky2":
        scenario.tasky2.update("Author", {"name": op[1] + "X"}, f"name = '{op[1]}'")
    elif kind == "delete_by_task":
        scenario.tasky.delete("Task", f"task LIKE '%{op[1]}%'")
    elif kind == "delete_via_do":
        scenario.do.delete("Todo", f"task LIKE '%{op[1]}%'")


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert_tasky"),
            st.sampled_from(AUTHORS),
            st.sampled_from(TASKS),
            st.integers(1, 3),
        ),
        st.tuples(st.just("insert_do"), st.sampled_from(AUTHORS), st.sampled_from(TASKS)),
        st.tuples(st.just("update_prio"), st.sampled_from(TASKS), st.integers(1, 3)),
        st.tuples(st.just("update_author_via_tasky2"), st.sampled_from(AUTHORS)),
        st.tuples(st.just("delete_by_task"), st.sampled_from(TASKS)),
        st.tuples(st.just("delete_via_do"), st.sampled_from(TASKS)),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=25, deadline=None)
@given(ops=operations)
def test_same_ops_same_visible_state_under_all_materializations(ops):
    rng = random.Random(0)
    reference = None
    for target in ["TasKy", "Do!", "TasKy2"]:
        scenario = build_paper_tasky()
        scenario.materialize(target)
        for op in ops:
            apply_operation(scenario, op, rng)
        state = visible_state(scenario)
        if reference is None:
            reference = (target, state)
        else:
            assert state == reference[1], (
                f"visible state under {target} differs from {reference[0]} "
                f"after {ops}"
            )


@pytest.mark.parametrize("seed", range(5))
def test_interleaved_writes_and_migrations(seed):
    """Writes interleaved with migrations preserve all visible states."""
    rng = random.Random(seed)
    scenario = build_paper_tasky()
    shadow = build_paper_tasky()  # never migrated
    targets = ["TasKy2", "Do!", "TasKy"]
    for step in range(6):
        op = rng.choice(["insert", "update", "delete", "migrate"])
        if op == "migrate":
            scenario.materialize(rng.choice(targets))
            continue
        author = rng.choice(AUTHORS)
        task = f"{rng.choice(TASKS)}-{step}"
        if op == "insert":
            prio = rng.randint(1, 3)
            for s in (scenario, shadow):
                s.tasky.insert("Task", {"author": author, "task": task, "prio": prio})
        elif op == "update":
            victim = rng.choice(TASKS)
            for s in (scenario, shadow):
                s.tasky.update("Task", {"prio": 2}, f"task LIKE '{victim}%'")
        else:
            victim = rng.choice(TASKS + ["Organize party"])
            for s in (scenario, shadow):
                s.tasky.delete("Task", f"task LIKE '{victim}%'")
    assert visible_state(scenario) == visible_state(shadow)


def test_all_five_materializations_preserve_state():
    scenario = build_paper_tasky()
    baseline = visible_state(scenario)
    genealogy = scenario.engine.genealogy
    for schema in enumerate_valid_materializations(genealogy):
        scenario.engine.apply_materialization(schema)
        assert visible_state(scenario) == baseline, schema
