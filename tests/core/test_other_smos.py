"""Engine-level coverage of SMO families outside the TasKy scenario."""

import pytest

from repro.core.engine import InVerDa


def engine_with(script: str) -> InVerDa:
    engine = InVerDa()
    engine.execute(script)
    return engine


class TestMergeVersions:
    @pytest.fixture
    def engine(self):
        engine = engine_with(
            "CREATE SCHEMA VERSION v1 WITH "
            "CREATE TABLE Urgent(title TEXT, prio INTEGER); "
            "CREATE TABLE Later(title TEXT, prio INTEGER);"
        )
        v1 = engine.connect("v1")
        v1.insert("Urgent", {"title": "now", "prio": 1})
        v1.insert("Later", {"title": "someday", "prio": 9})
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "MERGE TABLE Urgent (prio <= 3), Later (prio > 3) INTO All_;"
        )
        return engine

    def test_merge_unions_rows(self, engine):
        titles = sorted(r["title"] for r in engine.connect("v2").select("All_"))
        assert titles == ["now", "someday"]

    def test_insert_into_merged_routes_by_condition(self, engine):
        v2 = engine.connect("v2")
        v2.insert("All_", {"title": "fresh", "prio": 2})
        v1 = engine.connect("v1")
        assert v1.count("Urgent", "title = 'fresh'") == 1
        assert v1.count("Later", "title = 'fresh'") == 0

    def test_insert_matching_neither_condition_survives(self, engine):
        v2 = engine.connect("v2")
        v2.insert("All_", {"title": "nullprio", "prio": None})
        # Visible in v2 (stored in the source-side Uprime aux), invisible in v1.
        assert v2.count("All_", "title = 'nullprio'") == 1
        v1 = engine.connect("v1")
        assert v1.count("Urgent", "title = 'nullprio'") == 0
        assert v1.count("Later", "title = 'nullprio'") == 0

    def test_materialize_merged_version(self, engine):
        before = engine.connect("v2").select_keyed("All_")
        engine.execute("MATERIALIZE 'v2';")
        assert engine.connect("v2").select_keyed("All_") == before
        assert engine.connect("v1").count("Urgent") == 1


class TestJoinPkVersions:
    @pytest.fixture
    def engine(self):
        engine = engine_with(
            "CREATE SCHEMA VERSION v1 WITH "
            "CREATE TABLE Person(name TEXT); CREATE TABLE Address(city TEXT);"
        )
        v1 = engine.connect("v1")
        key = v1.insert("Person", {"name": "Ann"})
        from repro.bidel.smo.base import TableChange

        tv = engine.genealogy.schema_version("v1").table_version("Address")
        engine.apply_change(
            tv, TableChange(upserts={key: tv.schema.row_from_mapping({"city": "Dresden"})})
        )
        v1.insert("Person", {"name": "Solo"})  # no address partner
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH JOIN TABLE Person, Address INTO Resident ON PK;"
        )
        return engine

    def test_inner_join_rows(self, engine):
        rows = engine.connect("v2").select("Resident")
        assert rows == [{"name": "Ann", "city": "Dresden"}]

    def test_unmatched_row_survives_migration(self, engine):
        engine.execute("MATERIALIZE 'v2';")
        v1 = engine.connect("v1")
        assert sorted(r["name"] for r in v1.select("Person")) == ["Ann", "Solo"]

    def test_write_through_join(self, engine):
        engine.execute("MATERIALIZE 'v2';")
        v2 = engine.connect("v2")
        v2.insert("Resident", {"name": "Ben", "city": "Bonn"})
        v1 = engine.connect("v1")
        assert v1.count("Person", "name = 'Ben'") == 1
        assert v1.count("Address", "city = 'Bonn'") == 1


class TestDecomposeOuterJoinPk:
    def test_round_trip_through_versions(self):
        engine = engine_with(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Wide(a TEXT, b TEXT);"
        )
        v1 = engine.connect("v1")
        v1.insert("Wide", {"a": "x", "b": "y"})
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH DECOMPOSE TABLE Wide INTO L(a), R(b) ON PK;"
        )
        engine.execute(
            "CREATE SCHEMA VERSION v3 FROM v2 WITH OUTER JOIN TABLE L, R INTO Wide2 ON PK;"
        )
        assert engine.connect("v3").select("Wide2") == [{"a": "x", "b": "y"}]

    def test_partial_row_outer_join_null_fill(self):
        engine = engine_with(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Wide(a TEXT, b TEXT);"
        )
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH DECOMPOSE TABLE Wide INTO L(a), R(b) ON PK;"
        )
        v2 = engine.connect("v2")
        v2.insert("L", {"a": "only-left"})
        rows = engine.connect("v1").select("Wide", "a = 'only-left'")
        assert rows == [{"a": "only-left", "b": None}]


class TestDropTable:
    def test_dropped_table_invisible_in_new_version(self):
        engine = engine_with(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Keep(a TEXT); CREATE TABLE Gone(b TEXT);"
        )
        engine.connect("v1").insert("Gone", {"b": "precious"})
        engine.execute("CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE Gone;")
        assert engine.connect("v2").table_names() == ["Keep"]
        assert engine.connect("v1").count("Gone") == 1

    def test_data_survives_materializing_the_dropping_version(self):
        engine = engine_with(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Keep(a TEXT); CREATE TABLE Gone(b TEXT);"
        )
        engine.connect("v1").insert("Gone", {"b": "precious"})
        engine.connect("v1").insert("Keep", {"a": "also"})
        engine.execute("CREATE SCHEMA VERSION v2 FROM v1 WITH DROP TABLE Gone;")
        engine.execute("MATERIALIZE 'v2';")
        # The retired rows moved into the DROP TABLE aux; v1 still sees them.
        assert engine.connect("v1").select("Gone") == [{"b": "precious"}]
        engine.connect("v1").insert("Gone", {"b": "more"})
        assert engine.connect("v1").count("Gone") == 2


class TestConditionalSmos:
    def test_decompose_on_condition(self):
        engine = engine_with(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Pair(x INTEGER, y INTEGER);"
        )
        v1 = engine.connect("v1")
        v1.insert("Pair", {"x": 1, "y": 1})
        v1.insert("Pair", {"x": 2, "y": 2})
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH DECOMPOSE TABLE Pair INTO Xs(x), Ys(y) ON x = y;"
        )
        v2 = engine.connect("v2")
        assert sorted(r["x"] for r in v2.select("Xs")) == [1, 2]
        assert sorted(r["y"] for r in v2.select("Ys")) == [1, 2]
        # Generated ids are exposed and stable across reads.
        first = v2.select("Xs", order_by="id")
        second = v2.select("Xs", order_by="id")
        assert first == second

    def test_rename_table_version(self):
        engine = engine_with("CREATE SCHEMA VERSION v1 WITH CREATE TABLE Old(a TEXT);")
        engine.connect("v1").insert("Old", {"a": "kept"})
        engine.execute("CREATE SCHEMA VERSION v2 FROM v1 WITH RENAME TABLE Old INTO New;")
        assert engine.connect("v2").select("New") == [{"a": "kept"}]
        engine.connect("v2").insert("New", {"a": "back"})
        assert engine.connect("v1").count("Old") == 2


class TestLongChains:
    def test_five_add_columns(self):
        engine = engine_with("CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(base INTEGER);")
        engine.connect("v1").insert("T", {"base": 10})
        for index in range(5):
            engine.execute(
                f"CREATE SCHEMA VERSION v{index + 2} FROM v{index + 1} WITH "
                f"ADD COLUMN c{index} AS base + {index} INTO T;"
            )
        last = engine.connect("v6")
        row = last.select("T")[0]
        assert row == {"base": 10, "c0": 10, "c1": 11, "c2": 12, "c3": 13, "c4": 14}
        # Write at the far end; read at the origin.
        last.insert("T", {"base": 1, "c0": 0, "c1": 0, "c2": 0, "c3": 0, "c4": 0})
        assert engine.connect("v1").count("T") == 2
        # Materialize the middle and re-check both ends.
        engine.execute("MATERIALIZE 'v4';")
        assert engine.connect("v1").count("T") == 2
        assert engine.connect("v6").count("T") == 2
