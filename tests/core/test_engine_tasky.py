"""Integration tests: the full TasKy lifecycle of Section 2 / Figure 1."""

import pytest

from repro.errors import AccessError, CatalogError, EvolutionError
from tests.conftest import PAPER_ROWS, build_paper_tasky


def tasks_in(connection, table="Task"):
    return sorted(r["task"] for r in connection.select(table))


class TestEvolution:
    def test_versions_exist(self, paper_tasky):
        # Creation order (TasKy first, then Do! and TasKy2 derived from
        # it) — version_names() is genealogy-ordered, not name-sorted.
        assert paper_tasky.engine.version_names() == ["TasKy", "Do!", "TasKy2"]

    def test_do_schema(self, paper_tasky):
        assert paper_tasky.do.columns("Todo") == ("author", "task")

    def test_tasky2_schema(self, paper_tasky):
        assert paper_tasky.tasky2.columns("Task") == ("task", "prio", "author")
        assert paper_tasky.tasky2.columns("Author") == ("id", "name")

    def test_figure1_do_contents(self, paper_tasky):
        rows = paper_tasky.do.select("Todo", order_by="task")
        assert [(r["author"], r["task"]) for r in rows] == [
            ("Ben", "Clean room"),
            ("Ann", "Write paper"),
        ]

    def test_figure1_tasky2_contents(self, paper_tasky):
        authors = paper_tasky.tasky2.select("Author", order_by="name")
        assert [a["name"] for a in authors] == ["Ann", "Ben"]
        tasks = paper_tasky.tasky2.select("Task", order_by="task")
        by_name = {a["id"]: a["name"] for a in authors}
        assert [(t["task"], by_name[t["author"]]) for t in tasks] == [
            ("Clean room", "Ben"),
            ("Learn for exam", "Ben"),
            ("Organize party", "Ann"),
            ("Write paper", "Ann"),
        ]

    def test_unknown_source_version(self, paper_tasky):
        with pytest.raises(CatalogError):
            paper_tasky.engine.execute(
                "CREATE SCHEMA VERSION X FROM Nope WITH DROP TABLE Task;"
            )

    def test_unknown_source_table(self, paper_tasky):
        with pytest.raises(EvolutionError):
            paper_tasky.engine.execute(
                "CREATE SCHEMA VERSION X FROM TasKy WITH DROP TABLE Nope;"
            )

    def test_duplicate_version_name(self, paper_tasky):
        with pytest.raises(CatalogError):
            paper_tasky.engine.execute(
                "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE T(a);"
            )


class TestCoExistingWrites:
    """Writes in any version are visible in all other versions."""

    def test_insert_via_tasky_everywhere(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        scenario.tasky.insert("Task", {"author": "Cara", "task": "New urgent", "prio": 1})
        assert "New urgent" in tasks_in(scenario.tasky)
        assert "New urgent" in tasks_in(scenario.do, "Todo")
        assert "New urgent" in tasks_in(scenario.tasky2)

    def test_insert_via_do_defaults_prio(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        scenario.do.insert("Todo", {"author": "Ann", "task": "Via phone"})
        row = scenario.tasky.select("Task", "task = 'Via phone'")[0]
        assert row["prio"] == 1  # DROP COLUMN ... DEFAULT 1

    def test_insert_via_do_reuses_author(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        scenario.do.insert("Todo", {"author": "Ann", "task": "Via phone"})
        assert scenario.tasky2.count("Author") == 2

    def test_insert_via_tasky2(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        ann = scenario.tasky2.select("Author", "name = 'Ann'")[0]
        scenario.tasky2.insert(
            "Task", {"task": "From v2", "prio": 1, "author": ann["id"]}
        )
        row = scenario.tasky.select("Task", "task = 'From v2'")[0]
        assert row["author"] == "Ann"
        assert "From v2" in tasks_in(scenario.do, "Todo")

    def test_update_via_tasky2_prio_moves_into_do(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        changed = scenario.tasky2.update("Task", {"prio": 1}, "task = 'Learn for exam'")
        assert changed == 1
        assert "Learn for exam" in tasks_in(scenario.do, "Todo")

    def test_update_via_tasky_prio_leaves_do(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        scenario.tasky.update("Task", {"prio": 3}, "task = 'Clean room'")
        assert "Clean room" not in tasks_in(scenario.do, "Todo")

    def test_delete_via_do(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        assert scenario.do.delete("Todo", "task = 'Write paper'") == 1
        assert "Write paper" not in tasks_in(scenario.tasky)
        assert "Write paper" not in tasks_in(scenario.tasky2)

    def test_delete_all_tasks_of_author_removes_author(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        scenario.tasky.delete("Task", "author = 'Ben'")
        names = [a["name"] for a in scenario.tasky2.select("Author")]
        assert names == ["Ann"]

    def test_rename_column_view(self, materialized_paper_tasky):
        scenario = materialized_paper_tasky
        scenario.tasky2.update("Author", {"name": "Annette"}, "name = 'Ann'")
        assert "Annette" in {r["author"] for r in scenario.tasky.select("Task")}


class TestMigration:
    def test_all_versions_stable_across_all_materializations(self, paper_tasky):
        scenario = paper_tasky
        before = {
            "TasKy": scenario.tasky.select_keyed("Task"),
            "Do!": scenario.do.select_keyed("Todo"),
            "TasKy2.Task": scenario.tasky2.select_keyed("Task"),
            "TasKy2.Author": scenario.tasky2.select_keyed("Author"),
        }
        for target in ["TasKy2", "Do!", "TasKy", "TasKy2", "TasKy"]:
            scenario.materialize(target)
            assert scenario.tasky.select_keyed("Task") == before["TasKy"], target
            assert scenario.do.select_keyed("Todo") == before["Do!"], target
            assert scenario.tasky2.select_keyed("Task") == before["TasKy2.Task"], target
            assert scenario.tasky2.select_keyed("Author") == before["TasKy2.Author"], target

    def test_physical_tables_change(self, paper_tasky):
        scenario = paper_tasky
        initial = set(scenario.engine.physical_tables())
        scenario.materialize("TasKy2")
        evolved = set(scenario.engine.physical_tables())
        assert initial != evolved

    def test_materialize_single_table_versions(self, paper_tasky):
        scenario = paper_tasky
        scenario.engine.execute("MATERIALIZE 'TasKy2.Task', 'TasKy2.Author';")
        kinds = {
            smo.smo_type for smo in scenario.engine.current_materialization()
        }
        assert kinds == {"Decompose", "RenameColumn"}

    def test_invalid_materialization_rejected(self, paper_tasky):
        from repro.errors import MaterializationError

        with pytest.raises(MaterializationError):
            paper_tasky.engine.execute("MATERIALIZE 'Do!', 'TasKy2';")


class TestDropSchemaVersion:
    def test_dropped_version_unreachable(self, paper_tasky):
        paper_tasky.engine.execute("DROP SCHEMA VERSION Do!;")
        with pytest.raises(CatalogError):
            paper_tasky.engine.connect("Do!")

    def test_data_survives_for_other_versions(self, paper_tasky):
        paper_tasky.engine.execute("DROP SCHEMA VERSION Do!;")
        assert len(paper_tasky.tasky.select("Task")) == len(PAPER_ROWS)
        assert paper_tasky.tasky2.count("Task") == len(PAPER_ROWS)


class TestAccessApi:
    def test_select_projection_and_order(self, paper_tasky):
        rows = paper_tasky.tasky.select("Task", columns=["task"], order_by="task")
        assert rows[0] == {"task": "Clean room"}

    def test_select_with_string_predicate(self, paper_tasky):
        assert paper_tasky.tasky.count("Task", "prio = 1") == 2

    def test_select_with_callable_predicate(self, paper_tasky):
        assert paper_tasky.tasky.count("Task", lambda r: r["prio"] > 1) == 2

    def test_unknown_table(self, paper_tasky):
        with pytest.raises(AccessError):
            paper_tasky.tasky.select("Nope")

    def test_id_column_not_updatable(self, paper_tasky):
        with pytest.raises(AccessError):
            paper_tasky.tasky2.update("Author", {"id": 99})

    def test_update_by_key_missing(self, paper_tasky):
        with pytest.raises(AccessError):
            paper_tasky.tasky.update_by_key("Task", 424242, {"prio": 1})

    def test_insert_returns_key(self, paper_tasky):
        key = paper_tasky.tasky.insert("Task", {"author": "X", "task": "t", "prio": 5})
        assert key in paper_tasky.tasky.select_keyed("Task")

    def test_transaction_rollback(self, paper_tasky):
        scenario = paper_tasky
        before = scenario.tasky.select_keyed("Task")
        with pytest.raises(RuntimeError):
            with scenario.tasky.transaction():
                scenario.tasky.insert("Task", {"author": "X", "task": "tmp", "prio": 1})
                raise RuntimeError("abort")
        assert scenario.tasky.select_keyed("Task") == before

    def test_transaction_commit(self, paper_tasky):
        scenario = paper_tasky
        with scenario.tasky.transaction():
            scenario.tasky.insert("Task", {"author": "X", "task": "kept", "prio": 1})
        assert scenario.tasky.count("Task", "task = 'kept'") == 1
