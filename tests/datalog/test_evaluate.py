import pytest

from repro.datalog.ast import Assign, Atom, Compare, CondLit, Const, Rule, RuleSet, Var, wildcard
from repro.datalog.evaluate import evaluate
from repro.errors import DatalogError
from repro.expr import parse_expression

p, a, b = Var("p"), Var("a"), Var("b")


class TestBasics:
    def test_projection_rule(self):
        rules = RuleSet((Rule(Atom("Out", (p, a)), (Atom("In", (p, a, wildcard())),)),))
        result = evaluate(rules, {"In": {(1, "x", 10), (2, "y", 20)}})
        assert result["Out"] == {(1, "x"), (2, "y")}

    def test_join_on_key(self):
        rules = RuleSet(
            (Rule(Atom("J", (p, a, b)), (Atom("L", (p, a)), Atom("R", (p, b)))),)
        )
        result = evaluate(rules, {"L": {(1, "x"), (2, "y")}, "R": {(1, 10)}})
        assert result["J"] == {(1, "x", 10)}

    def test_union_of_rules(self):
        rules = RuleSet(
            (
                Rule(Atom("U", (p, a)), (Atom("L", (p, a)),)),
                Rule(Atom("U", (p, a)), (Atom("R", (p, a)),)),
            )
        )
        result = evaluate(rules, {"L": {(1, "x")}, "R": {(2, "y")}})
        assert result["U"] == {(1, "x"), (2, "y")}

    def test_missing_extensional_is_empty(self):
        rules = RuleSet((Rule(Atom("Out", (p, a)), (Atom("Nothing", (p, a)),)),))
        assert evaluate(rules, {})["Out"] == set()

    def test_constants_filter(self):
        rules = RuleSet((Rule(Atom("Out", (p,)), (Atom("In", (p, Const("x"))),)),))
        result = evaluate(rules, {"In": {(1, "x"), (2, "y")}})
        assert result["Out"] == {(1,)}


class TestNegation:
    def test_negative_atom(self):
        rules = RuleSet(
            (
                Rule(
                    Atom("Only", (p, a)),
                    (Atom("L", (p, a)), Atom("R", (p, wildcard()), False)),
                ),
            )
        )
        result = evaluate(rules, {"L": {(1, "x"), (2, "y")}, "R": {(2, 99)}})
        assert result["Only"] == {(1, "x")}

    def test_negation_of_derived_predicate(self):
        rules = RuleSet(
            (
                Rule(Atom("Mid", (p,)), (Atom("In", (p, Const(1))),)),
                Rule(
                    Atom("Out", (p, a)),
                    (Atom("In", (p, a)), Atom("Mid", (p,), False)),
                ),
            )
        )
        result = evaluate(rules, {"In": {(1, 1), (2, 2)}})
        assert result["Out"] == {(2, 2)}

    def test_recursion_rejected(self):
        rules = RuleSet((Rule(Atom("X", (p,)), (Atom("X", (p,)),)),))
        with pytest.raises(DatalogError):
            evaluate(rules, {})

    def test_cycle_between_predicates_rejected(self):
        rules = RuleSet(
            (
                Rule(Atom("X", (p,)), (Atom("Y", (p,)),)),
                Rule(Atom("Y", (p,)), (Atom("X", (p,)),)),
            )
        )
        with pytest.raises(DatalogError):
            evaluate(rules, {})


class TestConditionsAndFunctions:
    def test_condition_literal(self):
        cond = parse_expression("v >= 10")
        rules = RuleSet(
            (
                Rule(
                    Atom("Big", (p, a)),
                    (Atom("In", (p, a)), CondLit("c", cond, (("v", a),))),
                ),
            )
        )
        result = evaluate(rules, {"In": {(1, 5), (2, 15)}})
        assert result["Big"] == {(2, 15)}

    def test_negated_condition_includes_null(self):
        cond = parse_expression("v >= 10")
        rules = RuleSet(
            (
                Rule(
                    Atom("Small", (p, a)),
                    (Atom("In", (p, a)), CondLit("c", cond, (("v", a),), positive=False)),
                ),
            )
        )
        # NULL does not satisfy the condition, so it lands in the negation.
        result = evaluate(rules, {"In": {(1, 5), (2, 15), (3, None)}})
        assert result["Small"] == {(1, 5), (3, None)}

    def test_assign(self):
        rules = RuleSet(
            (
                Rule(
                    Atom("Out", (p, a, b)),
                    (Atom("In", (p, a)), Assign(b, lambda x: x * 2, (a,))),
                ),
            )
        )
        result = evaluate(rules, {"In": {(1, 3)}})
        assert result["Out"] == {(1, 3, 6)}

    def test_tuple_compare(self):
        rules = RuleSet(
            (
                Rule(
                    Atom("Diff", (p,)),
                    (
                        Atom("L", (p, a)),
                        Atom("R", (p, b)),
                        Compare("!=", (a,), (b,)),
                    ),
                ),
            )
        )
        result = evaluate(rules, {"L": {(1, "x"), (2, "y")}, "R": {(1, "x"), (2, "z")}})
        assert result["Diff"] == {(2,)}

    def test_unbound_head_variable_rejected(self):
        rules = RuleSet((Rule(Atom("Out", (p, b)), (Atom("In", (p,)),)),))
        with pytest.raises(DatalogError):
            evaluate(rules, {"In": {(1,)}})


class TestSplitRules:
    """The paper's SPLIT γ_tgt evaluated as plain Datalog."""

    def test_split_partition(self):
        from repro.bidel.parser import parse_smo
        from repro.bidel.smo.registry import build_semantics
        from repro.relational.schema import TableSchema

        node = parse_smo("SPLIT TABLE T INTO R WITH v = 1, S WITH v = 2")
        semantics = build_semantics(node, (TableSchema.of("T", ["v"]),))
        rules = semantics.gamma_tgt_rules()
        facts = {"U": {(1, 1), (2, 2), (3, 3)}}
        result = evaluate(rules, facts)
        assert result["R"] == {(1, 1)}
        assert result["S"] == {(2, 2)}
        assert result["Uprime"] == {(3, 3)}
