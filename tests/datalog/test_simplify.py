"""Lemma-level tests plus the end-to-end Section 5 / Appendix A checks."""

from repro.datalog.compose import compose_round_trip, is_identity, unfold_literal
from repro.datalog.simplify import (
    drop_empty_predicates,
    normalize_rule,
    simplify_rules,
    subsumption_pass,
    tautology_merge_pass,
)
from repro.datalog.symbolic import (
    OMEGA,
    SAtom,
    SCompare,
    SCond,
    SRule,
    SVar,
    anon,
    find_renaming,
)

p, A, A2, B = SVar("p"), SVar("A"), SVar("A2"), SVar("B")


def atom(pred, *terms, positive=True):
    return SAtom(pred, terms, positive)


class TestNormalizeRule:
    def test_lemma4_direct_contradiction(self):
        rule = SRule(atom("H", p, A), (atom("T", p, A), atom("T", p, A, positive=False)))
        assert normalize_rule(rule) is None

    def test_lemma4_wildcard_contradiction(self):
        rule = SRule(
            atom("H", p, A), (atom("T", p, A), atom("T", p, anon(), positive=False))
        )
        assert normalize_rule(rule) is None

    def test_lemma4_condition_contradiction(self):
        rule = SRule(
            atom("H", p, A),
            (atom("T", p, A), SCond("c", (A,)), SCond("c", (A,), False)),
        )
        assert normalize_rule(rule) is None

    def test_lemma5_unique_key_unification(self):
        rule = SRule(atom("H", p, A), (atom("T", p, A), atom("T", p, A2), SCompare("!=", A, A2)))
        # unification makes A = A2, contradicting A != A2 (paper Rule 38)
        assert normalize_rule(rule) is None

    def test_lemma5_merges_duplicates(self):
        rule = SRule(atom("H", p, A), (atom("T", p, A), atom("T", p, anon())))
        normalized = normalize_rule(rule)
        assert normalized is not None
        assert len(normalized.body) == 1

    def test_ground_compare_false_removes_rule(self):
        rule = SRule(atom("H", p), (atom("T", p), SCompare("!=", OMEGA, OMEGA)))
        assert normalize_rule(rule) is None

    def test_ground_compare_true_dropped(self):
        rule = SRule(atom("H", p), (atom("T", p), SCompare("=", OMEGA, OMEGA)))
        assert normalize_rule(rule) == SRule(atom("H", p), (atom("T", p),))

    def test_local_constant_equality_dropped(self):
        x = SVar("x")
        rule = SRule(atom("H", p), (atom("T", p), SCompare("=", x, OMEGA)))
        normalized = normalize_rule(rule)
        assert normalized == SRule(atom("H", p), (atom("T", p),))

    def test_duplicate_negatives_deduped_modulo_local_vars(self):
        rule = SRule(
            atom("H", p, A),
            (
                atom("T", p, A),
                atom("R", p, anon(), positive=False),
                atom("R", p, SVar("zz"), positive=False),
            ),
        )
        normalized = normalize_rule(rule)
        assert normalized is not None
        assert len(normalized.body) == 2


class TestLemma2:
    def test_positive_on_empty_removes_rule(self):
        rules = [SRule(atom("H", p), (atom("Aux", p),))]
        assert drop_empty_predicates(rules, {"Aux"}) == []

    def test_negative_on_empty_is_pruned(self):
        rules = [SRule(atom("H", p, A), (atom("T", p, A), atom("Aux", p, positive=False)))]
        out = drop_empty_predicates(rules, {"Aux"})
        assert out == [SRule(atom("H", p, A), (atom("T", p, A),))]


class TestLemma3:
    def test_condition_complement_merge(self):
        r1 = SRule(atom("H", p, A), (atom("T", p, A), SCond("c", (A,))))
        r2 = SRule(atom("H", p, A), (atom("T", p, A), SCond("c", (A,), False)))
        merged = tautology_merge_pass([r1, r2])
        assert merged == [SRule(atom("H", p, A), (atom("T", p, A),))]

    def test_atom_complement_merge_with_local_vars(self):
        r1 = SRule(atom("H", p, A), (atom("S", p, A), atom("R", p, anon(), positive=False)))
        r2 = SRule(atom("H", p, A), (atom("S", p, A), atom("R", p, SVar("w"))))
        merged = tautology_merge_pass([r1, r2])
        assert merged == [SRule(atom("H", p, A), (atom("S", p, A),))]

    def test_no_unsound_merge_with_bound_var(self):
        # R(p, A) with A bound in the head is NOT the complement of ¬R(p, _).
        r1 = SRule(atom("H", p, A), (atom("S", p, A), atom("R", p, anon(), positive=False)))
        r2 = SRule(atom("H", p, A), (atom("S", p, A), atom("R", p, A)))
        merged = tautology_merge_pass([r1, r2])
        assert len(merged) == 2

    def test_equality_variant_rule118_120(self):
        # H <- S(p,A), R(p,A)   merged with   H <- S(p,A), R(p,A2), A != A2
        r118 = SRule(atom("H", p, A), (atom("S", p, A), atom("R", p, A)))
        r120 = SRule(
            atom("H", p, A),
            (atom("S", p, A), atom("R", p, A2), SCompare("!=", A, A2)),
        )
        merged = tautology_merge_pass([r118, r120])
        assert len(merged) == 1
        (rule,) = merged
        assert len(rule.body) == 2  # S(p,A), R(p,_)


class TestSubsumption:
    def test_more_specific_rule_removed(self):
        general = SRule(atom("H", p, A), (atom("T", p, A),))
        specific = SRule(atom("H", p, A), (atom("T", p, A), SCond("c", (A,))))
        assert subsumption_pass([general, specific]) == [general]

    def test_duplicates_removed_modulo_renaming(self):
        r1 = SRule(atom("H", p, A), (atom("T", p, A),))
        r2 = SRule(atom("H", p, B), (atom("T", p, B),))
        assert len(subsumption_pass([r1, r2])) == 1


class TestUnfolding:
    def test_positive_unfold(self):
        rule = SRule(atom("Out", p, A), (atom("Mid", p, A),))
        definition = SRule(atom("Mid", p, A), (atom("In", p, A), SCond("c", (A,))))
        unfolded = unfold_literal(rule, rule.body[0], [definition])
        assert len(unfolded) == 1
        assert any(isinstance(lit, SCond) for lit in unfolded[0].body)

    def test_negative_unfold_produces_alternatives(self):
        rule = SRule(atom("Out", p, A), (atom("In", p, A), atom("Mid", p, anon(), positive=False)))
        definition = SRule(atom("Mid", p, B), (atom("In2", p, B), SCond("c", (B,))))
        unfolded = unfold_literal(rule, rule.body[1], [definition])
        # one alternative negates the atom, one negates the condition
        assert len(unfolded) == 2


class TestMatching:
    def test_find_renaming_bijective(self):
        r1 = SRule(atom("H", p, A), (atom("T", p, A),))
        r2 = SRule(atom("H", p, B), (atom("T", p, B),))
        assert find_renaming(r1, r2) is not None

    def test_find_renaming_rejects_non_bijective(self):
        r1 = SRule(atom("H", p, A, A2), (atom("T", p, A), atom("T2", p, A2)))
        r2 = SRule(atom("H", p, B, B), (atom("T", p, B), atom("T2", p, B)))
        assert find_renaming(r1, r2, exact=True) is None

    def test_subset_embedding(self):
        small = SRule(atom("H", p, A), (atom("T", p, A),))
        big = SRule(atom("H", p, A), (atom("T", p, A), SCond("c", (A,))))
        assert find_renaming(small, big, exact=False) is not None
        assert find_renaming(big, small, exact=False) is None
