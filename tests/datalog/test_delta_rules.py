"""Update-propagation rule derivation (the paper's Rules 52–54)."""

from repro.bidel.parser import parse_smo
from repro.bidel.smo.registry import build_semantics
from repro.datalog.delta import (
    delete_delta_name,
    derive_delta_rules,
    insert_delta_name,
)
from repro.relational.schema import TableSchema


def split_rules():
    node = parse_smo("SPLIT TABLE T INTO R WITH v = 1, S WITH v = 2")
    semantics = build_semantics(node, (TableSchema.of("T", ["v"]),))
    return semantics.gamma_tgt_rules()


class TestInsertRules:
    def test_rules_52_to_54_structure(self):
        """An insert on the unified table derives insert rules for R, S,
        and Uprime, each guarded by the minimality check ¬H(old)."""
        deltas = derive_delta_rules(split_rules(), "U")
        derived = {d.derived for d in deltas}
        assert derived == {"R", "S", "Uprime"}
        for delta in deltas:
            for rule in delta.insert_rules:
                assert rule.head.pred == insert_delta_name(delta.derived)
                first = rule.body[0]
                assert first.pred == insert_delta_name("U")
                # Minimality guard: ¬H(old) closes each insert rule.
                guard = rule.body[-1]
                assert guard.pred.endswith("__old") and not guard.positive

    def test_delete_rules_reference_old_and_new(self):
        deltas = derive_delta_rules(split_rules(), "U")
        for delta in deltas:
            for rule in delta.delete_rules:
                assert rule.head.pred == delete_delta_name(delta.derived)
                predicates = {lit.pred for lit in rule.body_atoms()}
                assert any(pred.endswith("__old") for pred in predicates)
                assert any(pred.endswith("__new") for pred in predicates)

    def test_unreferenced_predicate_yields_nothing(self):
        assert derive_delta_rules(split_rules(), "Nothing") == []

    def test_one_rule_per_body_occurrence(self):
        rules = split_rules()
        deltas = {d.derived: d for d in derive_delta_rules(rules, "U")}
        # R is derived by two rules referencing U -> two insert rules.
        assert len(deltas["R"].insert_rules) == 2
