import pytest

from repro.errors import ReproError
from repro.workloads.micro import (
    TWO_SMO_FIRST,
    TWO_SMO_SECOND,
    V3_READ_TABLE,
    build_two_smo_scenario,
)
from repro.workloads.mixes import PAPER_MIX, WorkloadMix, adoption_curve
from repro.workloads.tasky import build_tasky
from repro.workloads.wikimedia import TABLE4_HISTOGRAM, build_wikimedia


class TestTaskyScenario:
    def test_row_count(self):
        scenario = build_tasky(100)
        assert scenario.tasky.count("Task") == 100

    def test_deterministic_given_seed(self):
        a = build_tasky(20, seed=7).tasky.select("Task", order_by="task")
        b = build_tasky(20, seed=7).tasky.select("Task", order_by="task")
        assert a == b

    def test_without_branches(self):
        scenario = build_tasky(5, with_do=False, with_tasky2=False)
        assert scenario.engine.version_names() == ["TasKy"]


class TestMixes:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadMix(0.5, 0.5, 0.5, 0.5)

    def test_paper_mix(self):
        assert PAPER_MIX.reads == 0.5
        assert PAPER_MIX.deletes == 0.1

    def test_adoption_curve_shape(self):
        curve = adoption_curve(11)
        assert curve[0] < 0.05
        assert curve[-1] > 0.95
        assert curve == sorted(curve)  # monotone


class TestTwoSmoScenarios:
    @pytest.mark.parametrize("first", sorted(TWO_SMO_FIRST))
    def test_v2_always_contains_r_abc(self, first):
        engine = build_two_smo_scenario(first, "add_column", rows=30)
        columns = engine.connect("v2").columns("R")
        assert columns == ("a", "b", "c")

    @pytest.mark.parametrize("second", sorted(TWO_SMO_SECOND))
    def test_v3_readable_under_all_materializations(self, second):
        engine = build_two_smo_scenario("split", second, rows=30)
        table = V3_READ_TABLE[second]
        baseline = engine.connect("v3").select_keyed(table)
        for target in ("v2", "v3", "v1"):
            engine.execute(f"MATERIALIZE '{target}';")
            assert engine.connect("v3").select_keyed(table) == baseline, target

    def test_unknown_names_rejected(self):
        with pytest.raises(ReproError):
            build_two_smo_scenario("nope", "add_column")
        with pytest.raises(ReproError):
            build_two_smo_scenario("split", "nope")


class TestWikimediaScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return build_wikimedia(scale=0.001, versions=171)

    def test_exact_histogram(self, scenario):
        assert scenario.smo_histogram() == TABLE4_HISTOGRAM

    def test_171_versions(self, scenario):
        assert len(scenario.version_names) == 171

    def test_core_tables_survive(self, scenario):
        last = scenario.engine.connect(scenario.version_at(171))
        assert scenario.engine.connect("v001").count("page") == last.count("page")
        assert scenario.engine.connect("v001").count("links") == last.count("links")

    def test_write_at_late_version_visible_early(self, scenario):
        late = scenario.engine.connect(scenario.version_at(100))
        late_columns = late.columns("page")
        row = {name: 1 for name in late_columns if name != "title"}
        row["title"] = "RoundTrip"
        late.insert("page", row)
        early = scenario.engine.connect("v001")
        assert early.count("page", "title = 'RoundTrip'") == 1

    def test_deterministic(self):
        a = build_wikimedia(scale=0.001, versions=30, seed=5)
        b = build_wikimedia(scale=0.001, versions=30, seed=5)
        assert a.plan == b.plan
