"""The ``repro.testing`` fault injectors: the classic one-shot crash
injector and the seeded probability-based injector the soak harness
installs, plus the CLI fault-spec parser."""

from __future__ import annotations

import pytest

from repro.testing import (
    DualSystem,
    InjectedFault,
    RandomFaultInjector,
    one_shot,
    parse_fault_spec,
)

EVOLUTION = "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + 1 INTO R;"


def drive(injector, sequence):
    """Cross every point in ``sequence``, recording what fired."""
    fired = []
    for point in sequence:
        try:
            injector(point)
        except InjectedFault as fault:
            fired.append((fault.visit, fault.point))
    return fired


class TestOneShot:
    def test_fires_once_at_its_point_then_stays_quiet(self):
        injector = one_shot("drop:before-commit")
        injector("evolution:before-commit")  # other points pass through
        with pytest.raises(InjectedFault) as excinfo:
            injector("drop:before-commit")
        assert excinfo.value.point == "drop:before-commit"
        injector("drop:before-commit")  # spent: quiet forever after

    def test_custom_exception_class(self):
        class Boom(Exception):
            pass

        injector = one_shot("materialize:staged", exception=Boom)
        with pytest.raises(Boom):
            injector("materialize:staged")
        injector("materialize:staged")

    def test_aborted_transition_recovers_cleanly(self, tmp_path):
        """End to end through the backend hook: the injected crash must
        leave no trace after reopen, exactly like the crash-safety suite's
        hand-rolled injectors."""
        ds = DualSystem(database=str(tmp_path / "faults.db"))
        ds.execute_ddl("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
        ds.attach()
        ds.runmany("v1", "INSERT INTO R(a) VALUES (?)", [(i,) for i in range(5)])
        try:
            ds.backend.fault_injector = one_shot("evolution:before-commit")
            with pytest.raises(InjectedFault):
                ds.sq.execute(EVOLUTION)
            ds.reopen()
            ds.check("recovered-after-one-shot")
            ds.execute_ddl(EVOLUTION)
            ds.check("evolved-after-one-shot")
        finally:
            ds.close()


class TestRandomFaultInjector:
    def test_rate_one_fires_on_every_visit_of_its_point(self):
        injector = RandomFaultInjector({"p": 1.0}, seed=3)
        for _ in range(5):
            injector("other")  # rate 0.0: never fires
        fired = drive(injector, ["p", "p", "p"])
        assert [point for _, point in fired] == ["p", "p", "p"]
        assert injector.visits == ["other"] * 5 + ["p"] * 3
        assert injector.fired == fired

    def test_same_seed_same_visit_sequence_same_firing_pattern(self):
        sequence = ["evolution:before-commit", "materialize:staged"] * 50
        rates = {"evolution:before-commit": 0.5, "materialize:staged": 0.2}
        first = drive(RandomFaultInjector(rates, seed=7), sequence)
        second = drive(RandomFaultInjector(rates, seed=7), sequence)
        assert first == second
        assert first  # 100 draws at these rates: silence would be a bug
        other = drive(RandomFaultInjector(rates, seed=8), sequence)
        assert first != other

    def test_disarming_does_not_shift_the_rng_stream(self):
        """Visits drawn while disarmed still consume rng draws, so arming
        back up re-joins the exact stream an always-armed twin follows."""
        sequence = ["p"] * 30
        rates = {"p": 0.4}
        always = RandomFaultInjector(rates, seed=11)
        always_fired = drive(always, sequence)
        flipped = RandomFaultInjector(rates, seed=11)
        flipped.armed = False
        assert drive(flipped, sequence[:10]) == []
        flipped.armed = True
        late = drive(flipped, sequence[10:])
        assert late == [entry for entry in always_fired if entry[0] > 10]

    def test_rates_outside_unit_interval_are_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            RandomFaultInjector({"p": 1.5})
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            RandomFaultInjector({"p": -0.1})

    def test_describe_is_a_json_friendly_account(self):
        injector = RandomFaultInjector({"p": 1.0}, seed=5)
        drive(injector, ["q", "p"])
        description = injector.describe()
        assert description == {
            "seed": 5,
            "rates": {"p": 1.0},
            "visits": 2,
            "fired": [{"visit": 2, "point": "p"}],
        }


class TestParseFaultSpec:
    def test_parses_points_and_rates(self):
        spec = "evolution:before-commit=1.0, drop:before-commit=0.5"
        assert parse_fault_spec(spec) == {
            "evolution:before-commit": 1.0,
            "drop:before-commit": 0.5,
        }

    def test_single_point(self):
        assert parse_fault_spec("materialize:staged=0.25") == {
            "materialize:staged": 0.25
        }

    def test_empty_segments_are_skipped(self):
        assert parse_fault_spec("p=1.0,,") == {"p": 1.0}

    def test_missing_rate_is_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            parse_fault_spec("evolution:before-commit")

    def test_round_trips_through_the_injector(self):
        rates = parse_fault_spec("evolution:before-commit=1.0")
        injector = RandomFaultInjector(rates, seed=1)
        with pytest.raises(InjectedFault):
            injector("evolution:before-commit")
