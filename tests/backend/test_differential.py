"""Differential property test: randomized SMO chains plus mixed workloads
executed on the in-memory engine AND on the live SQLite backend must show
identical visible contents in every version under every valid
materialization (generated surrogate identifiers compared canonically)."""

from __future__ import annotations

import random

import pytest

from repro.catalog.materialization import enumerate_valid_materializations
from repro.relational.types import DataType
from tests.backend.util import DualSystem

WORDS = ["ant", "bee", "cat", "dog", "elk", "fox", "gnu", "hen"]

# Chains: (create script, loader rows per table, evolution scripts).
CHAINS = {
    "columns_then_split": (
        "CREATE TABLE R(a INTEGER, b INTEGER)",
        {"R": ["a", "b"]},
        [
            "ADD COLUMN c AS a + b INTO R",
            "SPLIT TABLE R INTO R1 WITH c % 2 = 0, R2 WITH c % 2 = 1",
        ],
    ),
    "decompose_then_rename": (
        "CREATE TABLE R(a INTEGER, b INTEGER, c INTEGER)",
        {"R": ["a", "b", "c"]},
        [
            "DECOMPOSE TABLE R INTO S(a), T(b, c) ON PK",
            "RENAME COLUMN b IN T TO bb; DROP COLUMN c FROM T DEFAULT 0",
        ],
    ),
    "fk_then_rename": (
        "CREATE TABLE R(a INTEGER, w TEXT)",
        {"R": ["a", "w"]},
        [
            "DECOMPOSE TABLE R INTO S(a), T(w) ON FK ref",
            "RENAME COLUMN w IN T TO word",
        ],
    ),
    "split_then_drop_column": (
        "CREATE TABLE U(a INTEGER, b INTEGER, c INTEGER)",
        {"U": ["a", "b", "c"]},
        [
            "SPLIT TABLE U INTO Hot WITH b = 1",
            "DROP COLUMN c FROM Hot DEFAULT 7",
        ],
    ),
    "merge_then_add": (
        "CREATE TABLE R(a INTEGER, b INTEGER); CREATE TABLE S(a INTEGER, b INTEGER)",
        {"R": ["a", "b"], "S": ["a", "b"]},
        [
            "MERGE TABLE R (b = 0), S (b = 1) INTO U",
            "ADD COLUMN d AS a * 10 INTO U",
        ],
    ),
    "branching": (
        "CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER)",
        {"Task": ["author", "task", "prio"]},
        [
            # Two branches off v1 (the TasKy shape).
            "SPLIT TABLE Task INTO Todo WITH prio = 1; "
            "DROP COLUMN prio FROM Todo DEFAULT 1",
            (
                "DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) "
                "ON FK author",
                "v1",
            ),
        ],
    ),
}


def _value(rng: random.Random, dtype) -> object:
    if dtype == DataType.TEXT:
        return rng.choice(WORDS)
    return rng.randint(0, 6)


# UPDATEs never target TEXT columns: in these chains the TEXT columns are
# exactly the ones feeding identifier-generating SMO payloads (FK
# decompositions), and in-place updates of such payloads are put conflicts
# with several valid resolutions — the engine's own pick depends on row
# iteration order, so there is no deterministic contract to compare
# against.  The per-SMO write suite pins those cases explicitly.


def _fuzz_ops(ds: DualSystem, rng: random.Random, count: int, context: str) -> None:
    versions = sorted(v.name for v in ds.mem.genealogy.active_versions())
    for index in range(count):
        version_name = rng.choice(versions)
        version = ds.mem.genealogy.schema_version(version_name)
        table = rng.choice(sorted(version.table_names()))
        tv = version.table_version(table)
        columns = [
            c for c in tv.schema.columns if c.name != tv.key_column
        ]
        op = rng.choice(["insert", "insert", "update", "delete"])
        if op == "insert" and columns:
            names = ", ".join(c.name for c in columns)
            placeholders = ", ".join("?" for _ in columns)
            params = tuple(_value(rng, c.dtype) for c in columns)
            sql = f"INSERT INTO {table}({names}) VALUES ({placeholders})"
        elif op == "update" and any(c.dtype != DataType.TEXT for c in columns):
            target = rng.choice([c for c in columns if c.dtype != DataType.TEXT])
            where = rng.choice(columns)
            sql = (
                f"UPDATE {table} SET {target.name} = ? "
                f"WHERE {where.name} = ?"
            )
            params = (_value(rng, target.dtype), _value(rng, where.dtype))
        elif columns:
            where = rng.choice(columns)
            sql = f"DELETE FROM {table} WHERE {where.name} = ?"
            params = (_value(rng, where.dtype),)
        else:  # pragma: no cover - every table has a payload column
            continue
        ds.run(version_name, sql, params)
        ds.check(f"{context}/op{index} {version_name}: {sql} {params}")


def _apply_materialization(ds: DualSystem, index: int) -> None:
    mem_schemas = enumerate_valid_materializations(ds.mem.genealogy)
    sq_schemas = enumerate_valid_materializations(ds.sq.genealogy)
    ds.mem.apply_materialization(mem_schemas[index])
    ds.sq.apply_materialization(sq_schemas[index])


@pytest.mark.parametrize("name", sorted(CHAINS))
@pytest.mark.parametrize("seed", [7, 21])
def test_differential_chain(name, seed):
    create, load, evolutions = CHAINS[name]
    rng = random.Random(seed)
    ds = DualSystem()
    ds.execute_ddl(f"CREATE SCHEMA VERSION v1 WITH {create};")
    ds.attach()
    for table, columns in load.items():
        rows = [
            tuple(
                rng.choice(WORDS) if c in ("author", "task", "w", "word") else rng.randint(0, 6)
                for c in columns
            )
            for _ in range(6)
        ]
        ds.runmany(
            "v1",
            f"INSERT INTO {table}({', '.join(columns)}) "
            f"VALUES ({', '.join('?' for _ in columns)})",
            rows,
        )
    try:
        for step, evolution in enumerate(evolutions, start=2):
            source = f"v{step - 1}"
            if isinstance(evolution, tuple):
                evolution, source = evolution
            ds.execute_ddl(
                f"CREATE SCHEMA VERSION v{step} FROM {source} WITH {evolution};"
            )
            ds.check(f"{name}/{seed}/after-evolution-v{step}")
        _fuzz_ops(ds, rng, 10, f"{name}/{seed}/initial")
        schemas = enumerate_valid_materializations(ds.mem.genealogy)
        indexes = list(range(len(schemas)))
        if len(indexes) > 4:
            indexes = indexes[:3] + [indexes[-1]]
        for index in indexes:
            _apply_materialization(ds, index)
            ds.check(f"{name}/{seed}/after-materialization-{index}")
            _fuzz_ops(ds, rng, 5, f"{name}/{seed}/mat-{index}")
    finally:
        ds.close()
