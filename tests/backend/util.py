"""Compatibility shim: the dual-system harness now lives in
:mod:`repro.testing` so the soak harness can import it too."""

from repro.testing import DualSystem, assert_states_match, visible_state

__all__ = ["DualSystem", "assert_states_match", "visible_state"]
