"""MATERIALIZE as an in-place SQL migration: every version's visible
contents must be untouched (identifiers included), while the physical
table layout actually moves."""

from __future__ import annotations

import pytest

from repro.backend.compare import visible_state
from repro.backend.sqlite import LiveSqliteBackend
from repro.catalog.materialization import enumerate_valid_materializations
from repro.sql.connection import connect
from repro.workloads.tasky import build_tasky


def _physical_layout(backend: LiveSqliteBackend) -> set[str]:
    return {
        name
        for name in backend.table_names()
        if name.startswith("d__") or name.startswith("aux__")
    }


def test_tasky_migration_cycle_preserves_contents():
    scenario = build_tasky(40)
    engine = scenario.engine
    backend = LiveSqliteBackend.attach(engine)
    conn = connect(engine, "TasKy", autocommit=True)
    before = visible_state(engine, backend)
    layouts = set()
    for target in ("TasKy2", "Do!", "TasKy"):
        conn.execute(f"MATERIALIZE '{target}';")
        layouts.add(frozenset(_physical_layout(backend)))
        assert visible_state(engine, backend) == before, f"contents moved at {target}"
    # The data actually migrated: three targets, three distinct layouts.
    assert len(layouts) == 3


def test_migration_walk_over_all_valid_schemas():
    scenario = build_tasky(25)
    engine = scenario.engine
    backend = LiveSqliteBackend.attach(engine)
    before = visible_state(engine, backend)
    schemas = enumerate_valid_materializations(engine.genealogy)
    assert len(schemas) == 5  # the paper's Table 2
    for schema in schemas:
        engine.apply_materialization(schema)
        assert visible_state(engine, backend) == before


def test_writes_keep_working_after_migration():
    scenario = build_tasky(10)
    engine = scenario.engine
    LiveSqliteBackend.attach(engine)
    conn = connect(engine, "TasKy", autocommit=True)
    conn.execute("MATERIALIZE 'TasKy2';")
    conn.execute("INSERT INTO Task(author, task, prio) VALUES ('Post', 'migration write', 1)")
    do = connect(engine, "Do!", autocommit=True)
    rows = do.execute("SELECT author, task FROM Todo WHERE author = 'Post'").fetchall()
    assert rows == [("Post", "migration write")]
    tasky2 = connect(engine, "TasKy2", autocommit=True)
    authors = tasky2.execute("SELECT name FROM Author WHERE name = 'Post'").fetchall()
    assert authors == [("Post",)]


@pytest.mark.parametrize("first,second", [("split", "add_column"), ("decompose_pk", "drop_column")])
def test_micro_chain_migrations(first, second):
    from repro.workloads.micro import build_two_smo_scenario

    engine = build_two_smo_scenario(first, second, rows=30)
    backend = LiveSqliteBackend.attach(engine)
    before = visible_state(engine, backend)
    for schema in enumerate_valid_materializations(engine.genealogy):
        engine.apply_materialization(schema)
        assert visible_state(engine, backend) == before
