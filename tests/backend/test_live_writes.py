"""Writes through generated views, executed inside SQLite via INSTEAD OF
triggers, must round-trip identically to the in-memory engine for every
SMO kind under source-, target-, and mixed materialization."""

from __future__ import annotations

import pytest

from tests.backend.util import DualSystem

# Each scenario: (create script for v1, loader, evolution for v2, ops).
# Loaders and ops run through the SQL layer on both systems; ops name the
# version they execute against.

SCENARIOS = {
    "rename": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER)",
        load=[("v1", "INSERT INTO R(a, b) VALUES (?, ?)", [(i, i * 10) for i in range(8)])],
        evolve="RENAME TABLE R INTO R2; RENAME COLUMN a IN R2 TO a2",
        ops=[
            ("v1", "INSERT INTO R(a, b) VALUES (100, 1)", ()),
            ("v2", "INSERT INTO R2(a2, b) VALUES (200, 2)", ()),
            ("v1", "UPDATE R SET b = 99 WHERE a = 3", ()),
            ("v2", "UPDATE R2 SET a2 = 42 WHERE b = 40", ()),
            ("v1", "DELETE FROM R WHERE a = 5", ()),
            ("v2", "DELETE FROM R2 WHERE a2 = 200", ()),
        ],
    ),
    "drop_table": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER); CREATE TABLE K(x INTEGER)",
        load=[("v1", "INSERT INTO R(a, b) VALUES (?, ?)", [(i, i) for i in range(6)])],
        evolve="DROP TABLE R",
        ops=[
            ("v1", "INSERT INTO R(a, b) VALUES (7, 7)", ()),
            ("v1", "UPDATE R SET b = 0 WHERE a = 2", ()),
            ("v1", "DELETE FROM R WHERE a = 1", ()),
        ],
    ),
    "add_column": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER)",
        load=[("v1", "INSERT INTO R(a, b) VALUES (?, ?)", [(i, i * 10) for i in range(8)])],
        evolve="ADD COLUMN c AS a + b INTO R",
        ops=[
            ("v1", "INSERT INTO R(a, b) VALUES (100, 1)", ()),
            ("v2", "INSERT INTO R(a, b, c) VALUES (9, 9, 999)", ()),
            ("v2", "UPDATE R SET c = 123 WHERE a = 2", ()),
            ("v1", "UPDATE R SET b = 77 WHERE a = 3", ()),
            ("v2", "DELETE FROM R WHERE a = 4", ()),
            ("v1", "DELETE FROM R WHERE a = 5", ()),
        ],
    ),
    "drop_column": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER, c INTEGER)",
        load=[
            ("v1", "INSERT INTO R(a, b, c) VALUES (?, ?, ?)", [(i, i, i * 2) for i in range(8)])
        ],
        evolve="DROP COLUMN c FROM R DEFAULT b * 5",
        ops=[
            ("v2", "INSERT INTO R(a, b) VALUES (100, 1)", ()),
            ("v1", "INSERT INTO R(a, b, c) VALUES (9, 9, 999)", ()),
            ("v2", "UPDATE R SET b = 50 WHERE a = 2", ()),
            ("v1", "UPDATE R SET c = 0 WHERE a = 3", ()),
            ("v2", "DELETE FROM R WHERE a = 4", ()),
            ("v1", "DELETE FROM R WHERE a = 5", ()),
        ],
    ),
    "decompose_pk": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER, c INTEGER)",
        load=[
            ("v1", "INSERT INTO R(a, b, c) VALUES (?, ?, ?)", [(i, i, i) for i in range(8)])
        ],
        evolve="DECOMPOSE TABLE R INTO S(a), T(b, c) ON PK",
        ops=[
            ("v1", "INSERT INTO R(a, b, c) VALUES (100, 1, 1)", ()),
            ("v2", "UPDATE S SET a = 41 WHERE a = 4", ()),
            ("v2", "UPDATE T SET b = 99 WHERE c = 3", ()),
            ("v2", "DELETE FROM S WHERE a = 2", ()),
            ("v2", "DELETE FROM T WHERE c = 5", ()),
            ("v1", "UPDATE R SET b = 7 WHERE a = 6", ()),
            ("v1", "DELETE FROM R WHERE a = 7", ()),
        ],
    ),
    "outer_join_pk": dict(
        create="CREATE TABLE S(a INTEGER); CREATE TABLE T(b INTEGER)",
        load=[],
        evolve="OUTER JOIN TABLE S, T INTO R ON PK",
        ops=[
            ("v2", "INSERT INTO R(a, b) VALUES (1, 10)", ()),
            ("v2", "INSERT INTO R(a, b) VALUES (2, 20)", ()),
            ("v1", "INSERT INTO S(a) VALUES (3)", ()),
            ("v2", "UPDATE R SET b = 11 WHERE a = 1", ()),
            ("v2", "DELETE FROM R WHERE a = 2", ()),
            ("v1", "DELETE FROM S WHERE a = 1", ()),
        ],
    ),
    "inner_join_pk": dict(
        create="CREATE TABLE L(a INTEGER); CREATE TABLE S(b INTEGER, c INTEGER)",
        load=[],
        evolve="JOIN TABLE L, S INTO T ON PK",
        ops=[
            ("v2", "INSERT INTO T(a, b, c) VALUES (1, 10, 100)", ()),
            ("v2", "INSERT INTO T(a, b, c) VALUES (2, 20, 200)", ()),
            ("v1", "INSERT INTO L(a) VALUES (3)", ()),
            ("v1", "INSERT INTO S(b, c) VALUES (30, 300)", ()),
            ("v2", "UPDATE T SET c = 101 WHERE a = 1", ()),
            ("v1", "UPDATE L SET a = 21 WHERE a = 2", ()),
            ("v1", "DELETE FROM L WHERE a = 1", ()),
            ("v2", "DELETE FROM T WHERE a = 21", ()),
        ],
    ),
    "split": dict(
        create="CREATE TABLE U(a INTEGER, b INTEGER)",
        load=[
            ("v1", "INSERT INTO U(a, b) VALUES (?, ?)", [(i, i % 3) for i in range(9)])
        ],
        evolve="SPLIT TABLE U INTO R WITH b = 0, S WITH b = 1",
        ops=[
            ("v1", "INSERT INTO U(a, b) VALUES (100, 0)", ()),
            ("v1", "INSERT INTO U(a, b) VALUES (101, 2)", ()),
            ("v2", "INSERT INTO R(a, b) VALUES (200, 0)", ()),
            ("v2", "INSERT INTO S(a, b) VALUES (201, 1)", ()),
            ("v2", "INSERT INTO R(a, b) VALUES (202, 9)", ()),  # violates cR -> Rstar
            ("v1", "UPDATE U SET b = 1 WHERE a = 3", ()),
            ("v2", "UPDATE R SET b = 5 WHERE a = 0", ()),
            ("v2", "DELETE FROM R WHERE a = 6", ()),
            ("v1", "DELETE FROM U WHERE a = 7", ()),
        ],
    ),
    "split_single": dict(
        create="CREATE TABLE U(a INTEGER, b INTEGER)",
        load=[
            ("v1", "INSERT INTO U(a, b) VALUES (?, ?)", [(i, i % 2) for i in range(8)])
        ],
        evolve="SPLIT TABLE U INTO R WITH b = 0",
        ops=[
            ("v1", "INSERT INTO U(a, b) VALUES (100, 0)", ()),
            ("v2", "INSERT INTO R(a, b) VALUES (200, 0)", ()),
            ("v2", "UPDATE R SET a = 300 WHERE a = 2", ()),
            ("v2", "DELETE FROM R WHERE a = 4", ()),
            ("v1", "DELETE FROM U WHERE a = 1", ()),
        ],
    ),
    "merge": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER); CREATE TABLE S(a INTEGER, b INTEGER)",
        load=[
            ("v1", "INSERT INTO R(a, b) VALUES (?, ?)", [(i, 0) for i in range(4)]),
            ("v1", "INSERT INTO S(a, b) VALUES (?, ?)", [(10 + i, 1) for i in range(4)]),
        ],
        evolve="MERGE TABLE R (b = 0), S (b = 1) INTO U",
        ops=[
            ("v2", "INSERT INTO U(a, b) VALUES (100, 0)", ()),
            ("v2", "INSERT INTO U(a, b) VALUES (101, 1)", ()),
            ("v2", "INSERT INTO U(a, b) VALUES (102, 7)", ()),
            ("v1", "INSERT INTO R(a, b) VALUES (200, 0)", ()),
            ("v1", "INSERT INTO S(a, b) VALUES (201, 1)", ()),
            ("v2", "UPDATE U SET b = 1 WHERE a = 2", ()),
            ("v1", "UPDATE R SET a = 55 WHERE a = 3", ()),
            ("v2", "DELETE FROM U WHERE a = 11", ()),
            ("v1", "DELETE FROM R WHERE a = 0", ()),
        ],
    ),
    "decompose_fk": dict(
        create="CREATE TABLE R(a TEXT, b TEXT)",
        load=[
            (
                "v1",
                "INSERT INTO R(a, b) VALUES (?, ?)",
                [("t1", "Ann"), ("t2", "Ben"), ("t3", "Ann"), ("t4", "Cara")],
            )
        ],
        evolve="DECOMPOSE TABLE R INTO S(a), T(b) ON FK owner",
        ops=[
            ("v1", "INSERT INTO R(a, b) VALUES ('t5', 'Ben')", ()),
            ("v1", "INSERT INTO R(a, b) VALUES ('t6', 'Dora')", ()),
            ("v1", "UPDATE R SET b = 'Eve' WHERE a = 't1'", ()),
            ("v2", "UPDATE T SET b = 'Benny' WHERE b = 'Ben'", ()),
            ("v2", "UPDATE S SET a = 't2x' WHERE a = 't2'", ()),
            ("v1", "DELETE FROM R WHERE a = 't4'", ()),
            ("v2", "DELETE FROM S WHERE a = 't3'", ()),
        ],
    ),
    "outer_join_fk": dict(
        create="CREATE TABLE W(a TEXT, b TEXT)",
        load=[
            (
                "v1",
                "INSERT INTO W(a, b) VALUES (?, ?)",
                [("t1", "Ann"), ("t2", "Ben"), ("t3", "Ann")],
            )
        ],
        evolve="DECOMPOSE TABLE W INTO S(a), T(b) ON FK ref",
        evolve2="OUTER JOIN TABLE S, T INTO W2 ON FK ref",
        ops=[
            ("v1", "INSERT INTO W(a, b) VALUES ('t4', 'Cara')", ()),
            ("v3", "INSERT INTO W2(a, b) VALUES ('t5', 'Ben')", ()),
            # Cara is t4's exclusive payload; in-place updates of a SHARED
            # payload through the two-hop wide view are put conflicts the
            # engine resolves order-dependently — not contract behavior.
            ("v3", "UPDATE W2 SET b = 'Eve' WHERE a = 't4'", ()),
            ("v1", "DELETE FROM W WHERE a = 't2'", ()),
            ("v3", "DELETE FROM W2 WHERE a = 't3'", ()),
        ],
    ),
    "decompose_cond": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER)",
        load=[
            (
                "v1",
                "INSERT INTO R(a, b) VALUES (?, ?)",
                [(1, 1), (2, 2), (3, 3), (4, 4)],
            )
        ],
        evolve="DECOMPOSE TABLE R INTO S(a), T(b) ON a = b",
        ops=[
            ("v1", "INSERT INTO R(a, b) VALUES (5, 5)", ()),
            ("v1", "UPDATE R SET b = 9 WHERE a = 2", ()),
            ("v1", "DELETE FROM R WHERE a = 3", ()),
        ],
    ),
    "inner_join_cond": dict(
        create="CREATE TABLE R(a INTEGER, b INTEGER)",
        load=[
            (
                "v1",
                "INSERT INTO R(a, b) VALUES (?, ?)",
                [(1, 1), (2, 2), (3, 3)],
            )
        ],
        evolve="DECOMPOSE TABLE R INTO S(a), T(b) ON a = b",
        evolve2="JOIN TABLE S, T INTO J ON a = b",
        ops=[
            ("v2", "INSERT INTO S(a) VALUES (7)", ()),
            ("v2", "INSERT INTO T(b) VALUES (7)", ()),
            ("v2", "DELETE FROM S WHERE a = 2", ()),
        ],
    ),
}


def _build(name: str, materialize: str | None) -> DualSystem:
    spec = SCENARIOS[name]
    ds = DualSystem()
    ds.execute_ddl(f"CREATE SCHEMA VERSION v1 WITH {spec['create']};")
    ds.attach()
    for version, sql, rows in spec["load"]:
        ds.runmany(version, sql, rows)
    ds.execute_ddl(f"CREATE SCHEMA VERSION v2 FROM v1 WITH {spec['evolve']};")
    if "evolve2" in spec:
        ds.execute_ddl(f"CREATE SCHEMA VERSION v3 FROM v2 WITH {spec['evolve2']};")
    if materialize is not None:
        ds.materialize(materialize)
    return ds


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("materialize", [None, "v1", "v2"])
def test_write_round_trip(name, materialize):
    if materialize == "v2" and "evolve2" in SCENARIOS[name]:
        materialize = "v3"  # the deepest version exercises the full chain
    ds = _build(name, materialize)
    try:
        ds.check(f"{name}/{materialize}/after-load")
        for index, (version, sql, params) in enumerate(SCENARIOS[name]["ops"]):
            ds.run(version, sql, params)
            ds.check(f"{name}/{materialize}/op{index}: {sql}")
    finally:
        ds.close()
