"""The SQL layer on the live backend: pushdown, DB-API surface parity with
the in-memory planner, and SQLite-mapped transactions."""

from __future__ import annotations

import pytest

from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa
from repro.errors import InterfaceError, OperationalError, ProgrammingError
from repro.sql.connection import connect


def _engine():
    engine = InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Item(name TEXT, qty INTEGER, tag TEXT);"
    )
    return engine


ROWS = [
    ("apple", 5, "fruit"),
    ("banana", 2, "fruit"),
    ("carrot", 9, None),
    ("daikon", 2, "veg"),
]


@pytest.fixture(params=["memory", "sqlite"])
def conn(request):
    engine = _engine()
    connection = connect(engine, "v1", autocommit=True, backend=request.param)
    connection.executemany("INSERT INTO Item(name, qty, tag) VALUES (?, ?, ?)", ROWS)
    return connection


class TestSelectPushdown:
    def test_where_in_list(self, conn):
        rows = conn.execute(
            "SELECT name FROM Item WHERE qty IN (2, 9) ORDER BY name"
        ).fetchall()
        assert rows == [("banana",), ("carrot",), ("daikon",)]

    def test_where_in_params(self, conn):
        rows = conn.execute(
            "SELECT name FROM Item WHERE name IN (?, ?) ORDER BY name", ("apple", "daikon")
        ).fetchall()
        assert rows == [("apple",), ("daikon",)]

    def test_is_null_and_is_not_null(self, conn):
        assert conn.execute(
            "SELECT name FROM Item WHERE tag IS NULL"
        ).fetchall() == [("carrot",)]
        assert len(conn.execute("SELECT name FROM Item WHERE tag IS NOT NULL").fetchall()) == 3

    def test_not_in_with_null_semantics(self, conn):
        # NULL tag is neither in nor not-in the list (three-valued logic).
        rows = conn.execute(
            "SELECT name FROM Item WHERE tag NOT IN ('veg') ORDER BY name"
        ).fetchall()
        assert rows == [("apple",), ("banana",)]

    def test_like(self, conn):
        rows = conn.execute("SELECT name FROM Item WHERE name LIKE '%an%' ORDER BY name").fetchall()
        assert rows == [("banana",)]

    def test_order_by_nulls_last_desc(self, conn):
        rows = conn.execute("SELECT tag FROM Item ORDER BY tag DESC, name ASC").fetchall()
        assert rows == [("veg",), ("fruit",), ("fruit",), (None,)]

    def test_limit_offset(self, conn):
        rows = conn.execute(
            "SELECT name FROM Item ORDER BY name LIMIT 2 OFFSET 1"
        ).fetchall()
        assert rows == [("banana",), ("carrot",)]

    def test_computed_projection(self, conn):
        rows = conn.execute(
            "SELECT name, qty * 2 AS double FROM Item WHERE name = 'apple'"
        ).fetchall()
        assert rows == [("apple", 10)]

    def test_rowid_projection_and_filter(self, conn):
        first = conn.execute("SELECT rowid, name FROM Item ORDER BY rowid").fetchone()
        assert isinstance(first[0], int)
        again = conn.execute(
            "SELECT name FROM Item WHERE rowid = ?", (first[0],)
        ).fetchall()
        assert again == [(first[1],)]

    def test_unknown_column_raises(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT nope FROM Item")


class TestDescription:
    def test_description_populated(self, conn):
        cursor = conn.execute("SELECT name, qty FROM Item")
        names = [entry[0] for entry in cursor.description]
        assert names == ["name", "qty"]

    def test_description_select_star(self, conn):
        cursor = conn.execute("SELECT * FROM Item")
        assert [e[0] for e in cursor.description] == ["name", "qty", "tag"]

    def test_description_matches_across_backends(self):
        results = []
        for backend in ("memory", "sqlite"):
            engine = _engine()
            connection = connect(engine, "v1", autocommit=True, backend=backend)
            cursor = connection.execute("SELECT name AS n, qty + 1 FROM Item")
            results.append(cursor.description)
        assert results[0] == results[1]


class TestDmlParity:
    def test_update_rowcount(self, conn):
        cursor = conn.execute("UPDATE Item SET qty = qty + 1 WHERE tag = 'fruit'")
        assert cursor.rowcount == 2
        assert conn.execute("SELECT qty FROM Item WHERE name = 'apple'").fetchone() == (6,)

    def test_delete_rowcount(self, conn):
        assert conn.execute("DELETE FROM Item WHERE qty = 2").rowcount == 2
        assert conn.execute("SELECT name FROM Item").rowcount == 2

    def test_insert_lastrowid(self, conn):
        cursor = conn.execute("INSERT INTO Item(name, qty, tag) VALUES ('egg', 1, NULL)")
        assert cursor.rowcount == 1
        assert isinstance(cursor.lastrowid, int)

    def test_executemany_and_fetchmany(self, conn):
        cursor = conn.cursor()
        cursor.executemany(
            "INSERT INTO Item(name, qty, tag) VALUES (?, ?, ?)",
            [("e1", 1, None), ("e2", 2, None), ("e3", 3, None)],
        )
        assert cursor.rowcount == 3
        select = conn.execute("SELECT name FROM Item ORDER BY name")
        select.arraysize = 2
        assert len(select.fetchmany()) == 2
        assert len(select.fetchmany(4)) == 4
        assert select.fetchmany(100) == [("e3",)]

    def test_arraysize_is_per_cursor(self, conn):
        a, b = conn.cursor(), conn.cursor()
        a.arraysize = 5
        assert b.arraysize == 1

    def test_key_column_update_rejected_on_fk_table(self):
        for backend in ("memory", "sqlite"):
            engine = _engine()
            connection = connect(engine, "v1", autocommit=True, backend=backend)
            connection.executemany(
                "INSERT INTO Item(name, qty, tag) VALUES (?, ?, ?)", ROWS
            )
            engine.execute(
                "CREATE SCHEMA VERSION v2 FROM v1 WITH "
                "DECOMPOSE TABLE Item INTO Item(name, qty), Tag(tag) ON FK tid;"
            )
            v2 = connect(engine, "v2", autocommit=True, backend=backend)
            with pytest.raises((OperationalError, ProgrammingError)):
                v2.execute("UPDATE Tag SET id = 99")


class TestSqliteTransactions:
    def test_commit_and_rollback(self):
        engine = _engine()
        conn = connect(engine, "v1", backend="sqlite")
        conn.execute("INSERT INTO Item(name, qty, tag) VALUES ('x', 1, NULL)")
        conn.rollback()
        assert conn.execute("SELECT * FROM Item").rowcount == 0
        conn.execute("INSERT INTO Item(name, qty, tag) VALUES ('y', 1, NULL)")
        conn.commit()
        assert conn.execute("SELECT name FROM Item").fetchall() == [("y",)]

    def test_rollback_undoes_propagated_effects(self):
        engine = _engine()
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH RENAME TABLE Item INTO Ware;"
        )
        backend = LiveSqliteBackend.attach(engine)
        v1 = connect(engine, "v1", backend=backend)
        v2 = connect(engine, "v2", autocommit=True, backend=backend)
        v1.execute("INSERT INTO Item(name, qty, tag) VALUES ('temp', 1, NULL)")
        assert v2.execute("SELECT * FROM Ware").rowcount == 1
        v1.rollback()
        assert v2.execute("SELECT * FROM Ware").rowcount == 0

    def test_with_block_commits_and_aborts(self):
        engine = _engine()
        conn = connect(engine, "v1", backend="sqlite")
        with conn:
            conn.execute("INSERT INTO Item(name, qty, tag) VALUES ('kept', 1, NULL)")
        with pytest.raises(RuntimeError):
            with conn:
                conn.execute("INSERT INTO Item(name, qty, tag) VALUES ('gone', 1, NULL)")
                raise RuntimeError("abort")
        names = [row[0] for row in conn.execute("SELECT name FROM Item").fetchall()]
        assert names == ["kept"]

    def test_update_with_set_params_and_literal_where(self):
        # The matched-count probe re-renders only the WHERE clause; the
        # binding count must follow the rendered SQL, not the statement.
        engine = _engine()
        conn = connect(engine, "v1", autocommit=True, backend="sqlite")
        conn.executemany("INSERT INTO Item(name, qty, tag) VALUES (?, ?, ?)", ROWS)
        cursor = conn.execute("UPDATE Item SET qty = ? WHERE name = 'apple'", (77,))
        assert cursor.rowcount == 1
        assert conn.execute("UPDATE Item SET qty = ? WHERE name = 'nobody'", (1,)).rowcount == 0
        assert conn.execute("DELETE FROM Item WHERE qty = 77").rowcount == 1

    def test_autocommit_write_inside_foreign_transaction_refused(self):
        # Each connection runs its own session; on the shared-cache
        # in-memory database a write colliding with another session's
        # open write transaction fails fast on the table lock (WAL
        # file databases queue on the busy timeout instead).
        engine = _engine()
        a = connect(engine, "v1", backend="sqlite")
        b = connect(engine, "v1", autocommit=True, backend="sqlite")
        a.execute("INSERT INTO Item(name, qty, tag) VALUES ('a', 1, NULL)")
        with pytest.raises(OperationalError):
            b.execute("INSERT INTO Item(name, qty, tag) VALUES ('b', 1, NULL)")
        a.rollback()
        b.execute("INSERT INTO Item(name, qty, tag) VALUES ('b', 1, NULL)")
        assert b.execute("SELECT name FROM Item").fetchall() == [("b",)]

    def test_statement_atomicity_mid_batch(self):
        engine = _engine()
        conn = connect(engine, "v1", autocommit=True, backend="sqlite")
        with pytest.raises(Exception):
            conn.executemany(
                "INSERT INTO Item(name, qty, tag) VALUES (?, ?, ?)",
                [("ok", 1, None), ("bad", 2)],  # wrong arity fails mid-batch
            )
        assert conn.execute("SELECT * FROM Item").rowcount == 0


    def test_stale_owner_cannot_clobber_newer_transaction(self):
        # DDL force-commits A's transaction; A's later rollback must not
        # touch the transaction C opened afterwards.
        engine = _engine()
        a = connect(engine, "v1", backend="sqlite")
        a.execute("INSERT INTO Item(name, qty, tag) VALUES ('a', 1, NULL)")
        connect(engine, "v1", autocommit=True, backend="sqlite").execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH RENAME TABLE Item INTO Ware;"
        )
        c = connect(engine, "v2", backend="sqlite")
        c.execute("INSERT INTO Ware(name, qty, tag) VALUES ('c', 1, NULL)")
        a.rollback()  # stale: its transaction already ended with the DDL
        c.commit()
        names = sorted(
            row[0] for row in c.execute("SELECT name FROM Ware").fetchall()
        )
        assert names == ["a", "c"]


class TestBackendSelection:
    def test_memory_refused_once_backend_attached(self):
        engine = _engine()
        LiveSqliteBackend.attach(engine)
        with pytest.raises(InterfaceError):
            connect(engine, "v1", backend="memory")

    def test_preattach_memory_connection_refused_after_attach(self):
        # A connection opened before the attach would read/write the dead
        # in-memory snapshot; it must refuse instead of silently diverging.
        engine = _engine()
        stale = connect(engine, "v1", autocommit=True)
        LiveSqliteBackend.attach(engine)
        with pytest.raises(InterfaceError):
            stale.execute("SELECT * FROM Item")
        with pytest.raises(InterfaceError):
            stale.execute("INSERT INTO Item(name, qty, tag) VALUES ('x', 1, NULL)")

    def test_default_uses_attached_backend(self):
        engine = _engine()
        LiveSqliteBackend.attach(engine)
        conn = connect(engine, "v1")
        assert conn.backend_name == "sqlite"

    def test_backend_sqlite_attaches_lazily(self):
        engine = _engine()
        assert engine.live_backend is None
        conn = connect(engine, "v1", backend="sqlite")
        assert engine.live_backend is not None
        assert conn.backend_name == "sqlite"

    def test_unknown_backend(self):
        with pytest.raises(InterfaceError):
            connect(_engine(), "v1", backend="duckdb")
