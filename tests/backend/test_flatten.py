"""Flattened view composition: equivalence with the nested emission and
with the in-memory engine, full composition of simple chains, and graceful
fallback for SMOs the composer treats as opaque."""

from __future__ import annotations

import random
import re

import pytest

from repro.backend import codegen
from repro.backend.compare import assert_states_match, visible_state
from repro.backend.sqlite import LiveSqliteBackend
from repro.catalog.materialization import enumerate_valid_materializations
from repro.core.engine import InVerDa
from repro.sql.connection import connect

WORDS = ["ant", "bee", "cat", "dog", "elk", "fox"]


class TriSystem:
    """Three engines fed identically: in-memory, SQLite with flattened
    views, SQLite with the nested view stack."""

    def __init__(self):
        self.mem = InVerDa()
        self.flat = InVerDa()
        self.nested = InVerDa()
        self.backends = {}

    def attach(self):
        self.backends["flat"] = LiveSqliteBackend.attach(self.flat, flatten=True)
        self.backends["nested"] = LiveSqliteBackend.attach(self.nested, flatten=False)

    def ddl(self, script: str) -> None:
        for engine in (self.mem, self.flat, self.nested):
            engine.execute(script)

    def run(self, version: str, sql: str, params: tuple = ()) -> None:
        for engine in (self.mem, self.flat, self.nested):
            backend = (
                self.backends["flat"]
                if engine is self.flat
                else self.backends["nested"]
                if engine is self.nested
                else None
            )
            conn = connect(engine, version, autocommit=True, backend=backend)
            try:
                conn.execute(sql, params)
            finally:
                conn.close()

    def check(self, context: str) -> None:
        mem_state = visible_state(self.mem)
        for label in ("flat", "nested"):
            engine = getattr(self, label)
            state = visible_state(engine, self.backends[label])
            try:
                assert_states_match(self.mem, mem_state, engine, state)
            except AssertionError as exc:
                raise AssertionError(f"[{context}/{label}] {exc}") from None

    def close(self) -> None:
        for backend in self.backends.values():
            backend.close()


CHAIN_STEPS = {
    # step builders: (description used in ids, list of evolution scripts)
    "deep_mixed": [
        "RENAME COLUMN a IN R TO a1",
        "ADD COLUMN d AS b + 1 INTO R",
        "SPLIT TABLE R INTO R3 WITH b >= 1",
        "RENAME COLUMN a1 IN R3 TO a4",
        "DROP COLUMN d FROM R3 DEFAULT 0",
        "SPLIT TABLE R3 INTO R6 WITH b >= 2",
        "RENAME COLUMN a4 IN R6 TO a7",
        "RENAME COLUMN a7 IN R6 TO a8",
    ],
    "decompose_pk_chain": [
        "DECOMPOSE TABLE R INTO S(a, w), T(b, c) ON PK",
        "RENAME COLUMN b IN T TO bb",
        "SPLIT TABLE T INTO T3 WITH bb >= 1",
        "RENAME COLUMN c IN T3 TO cc",
    ],
    "fk_opaque_fallback": [
        "DECOMPOSE TABLE R INTO S(a, b, c), Names(w) ON FK ref",
        "RENAME COLUMN w IN Names TO word",
        "SPLIT TABLE S INTO Hot WITH b >= 2",
    ],
}


@pytest.mark.parametrize("name", sorted(CHAIN_STEPS))
@pytest.mark.parametrize("seed", [3, 11])
def test_flat_nested_memory_differential(name, seed):
    rng = random.Random(seed)
    tri = TriSystem()
    tri.ddl("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b INTEGER, c INTEGER, w TEXT);")
    tri.attach()
    try:
        for _ in range(8):
            tri.run(
                "v1",
                "INSERT INTO R(a, b, c, w) VALUES (?, ?, ?, ?)",
                (rng.randint(0, 5), rng.randint(0, 3), rng.randint(0, 5), rng.choice(WORDS)),
            )
        for step, evolution in enumerate(CHAIN_STEPS[name], start=2):
            tri.ddl(f"CREATE SCHEMA VERSION v{step} FROM v{step - 1} WITH {evolution};")
            tri.check(f"{name}/{seed}/after-v{step}")
        # Writes at the tip and at the base propagate identically.
        versions = sorted(v.name for v in tri.mem.genealogy.active_versions())
        for index in range(6):
            version = rng.choice(versions)
            tables = sorted(
                tri.mem.genealogy.schema_version(version).table_names()
            )
            table = rng.choice(tables)
            tv = tri.mem.genealogy.schema_version(version).table_version(table)
            columns = [
                c.name
                for c in tv.schema.columns
                if c.name != tv.key_column and not c.name.startswith("ref")
            ]
            if not columns:
                continue
            integer_columns = [c for c in columns if c not in ("w", "word")]
            if index % 3 == 2 and integer_columns:
                tri.run(
                    version,
                    f"UPDATE {table} SET {integer_columns[0]} = ? WHERE {integer_columns[-1]} = ?",
                    (rng.randint(0, 5), rng.randint(0, 3)),
                )
            else:
                names = ", ".join(columns)
                qs = ", ".join("?" for _ in columns)
                params = tuple(
                    rng.choice(WORDS) if c in ("w", "word") else rng.randint(0, 5)
                    for c in columns
                )
                tri.run(version, f"INSERT INTO {table}({names}) VALUES ({qs})", params)
            tri.check(f"{name}/{seed}/write-{index}@{version}")
        # A materialization move keeps all three systems aligned.
        schemas = enumerate_valid_materializations(tri.mem.genealogy)
        index = len(schemas) // 2
        for engine in (tri.mem, tri.flat, tri.nested):
            engine.apply_materialization(
                enumerate_valid_materializations(engine.genealogy)[index]
            )
        tri.check(f"{name}/{seed}/after-materialization")
    finally:
        tri.close()


def _view_bodies(engine, flatten):
    bodies = {}
    for statement in codegen.view_statements(engine, flatten=flatten):
        match = re.match(r'CREATE VIEW "?([^" ]+)"? AS\n(.*)', statement, re.DOTALL)
        bodies[match.group(1)] = match.group(2)
    return bodies


def test_simple_chains_compose_to_physical_scans():
    """A chain of renames/projections flattens to ONE scan of the physical
    table — no references to other generated views, no UNION."""
    engine = InVerDa()
    engine.execute("CREATE SCHEMA VERSION S0 WITH CREATE TABLE T(a TEXT, b INTEGER);")
    column = "a"
    for step in range(1, 9):
        engine.execute(
            f"CREATE SCHEMA VERSION S{step} FROM S{step - 1} WITH "
            f"RENAME COLUMN {column} IN T TO a{step};"
        )
        column = f"a{step}"
    bodies = _view_bodies(engine, flatten=True)
    tip = engine.genealogy.schema_version("S8").table_version("T")
    body = bodies[tip.view_name]
    assert "UNION" not in body
    assert tip.view_name not in body
    assert not re.search(r"\bv\d+__", body), body  # no generated-view refs
    base = engine.genealogy.schema_version("S0").table_version("T")
    assert base.data_table_name in body


def test_union_chain_stays_linear():
    """SPLIT levels merge into OR-of-EXISTS predicates: the flat body's
    size grows linearly with depth, not exponentially (the nested emission
    doubles references per level)."""
    engine = InVerDa()
    engine.execute("CREATE SCHEMA VERSION S0 WITH CREATE TABLE T0(a TEXT, b INTEGER);")
    table = "T0"
    for step in range(1, 7):
        new = f"T{step}"
        engine.execute(
            f"CREATE SCHEMA VERSION S{step} FROM S{step - 1} WITH "
            f"SPLIT TABLE {table} INTO {new} WITH b >= {step};"
        )
        table = new
    bodies = _view_bodies(engine, flatten=True)
    tip = engine.genealogy.schema_version("S6").table_version(table)
    body = bodies[tip.view_name]
    # One scan of the base data table, with one Rstar EXISTS per level.
    base = engine.genealogy.schema_version("S0").table_version("T0")
    assert body.count(base.data_table_name) == 1
    assert "UNION" not in body
    assert body.count("EXISTS") == 6


def test_opaque_fk_views_fall_back_to_references():
    """FK-decompose views are hand-written SQL the composer cannot
    flatten; they keep (flat) view references and still serve correctly."""
    engine = InVerDa()
    engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, w TEXT);")
    engine.execute(
        "CREATE SCHEMA VERSION v2 FROM v1 WITH "
        "DECOMPOSE TABLE R INTO S(a), T(w) ON FK ref;"
    )
    engine.execute(
        "CREATE SCHEMA VERSION v3 FROM v2 WITH RENAME COLUMN w IN T TO word;"
    )
    backend = LiveSqliteBackend.attach(engine)
    try:
        conn = connect(engine, "v1", autocommit=True, backend=backend)
        conn.executemany(
            "INSERT INTO R(a, w) VALUES (?, ?)", [(1, "ant"), (2, "bee"), (3, "ant")]
        )
        v3 = connect(engine, "v3", autocommit=True, backend=backend)
        words = sorted(r[0] for r in v3.execute("SELECT word FROM T").fetchall())
        assert words == ["ant", "bee"]
        conn.close()
        v3.close()
    finally:
        backend.close()


def test_tautology_elimination_requires_matching_outer_aliases():
    """EXISTS / NOT EXISTS probes correlated against DIFFERENT scanned
    entries are not complementary: the merged branch must keep its
    disjunction (alias canonicalization pins the outer aliases)."""
    from repro.backend.compose import ViewComposer
    from repro.sqlgen.views import ViewBranch

    composer = ViewComposer()
    head = (("p", "f1.p"), ("a", "f1.a"), ("b", "f2.b"))
    froms = (("f1", "tbl_a"), ("f2", "tbl_b"))
    b1 = ViewBranch(
        head=head,
        froms=froms,
        where=("f2.p = f1.p", "EXISTS (SELECT 1 FROM aux x WHERE x.p = f1.p)"),
    )
    b2 = ViewBranch(
        head=head,
        froms=froms,
        where=("f2.p = f1.p", "NOT EXISTS (SELECT 1 FROM aux x WHERE x.p = f2.p)"),
    )
    merged = composer._merge([b1, b2])
    assert len(merged) == 1
    assert any("OR" in cond for cond in merged[0].where), merged[0].where

    # Probes against the SAME entry ARE complementary: WHERE collapses.
    b3 = ViewBranch(
        head=head,
        froms=froms,
        where=("f2.p = f1.p", "NOT EXISTS (SELECT 1 FROM aux x WHERE x.p = f1.p)"),
    )
    merged = composer._merge([b1, b3])
    assert len(merged) == 1
    assert merged[0].where == ("f2.p = f1.p",)


def test_flatten_knob_defaults_on_and_is_honored():
    engine = InVerDa()
    engine.execute("CREATE SCHEMA VERSION S0 WITH CREATE TABLE T(a INTEGER);")
    engine.execute(
        "CREATE SCHEMA VERSION S1 FROM S0 WITH RENAME COLUMN a IN T TO b;"
    )
    backend = LiveSqliteBackend.attach(engine)
    try:
        assert backend.flatten is True
        tip = engine.genealogy.schema_version("S1").table_version("T")
        base = engine.genealogy.schema_version("S0").table_version("T")
        flat_body = _view_bodies(engine, flatten=True)[tip.view_name]
        nested_body = _view_bodies(engine, flatten=False)[tip.view_name]
        assert base.data_table_name in flat_body
        assert base.view_name in nested_body
    finally:
        backend.close()
