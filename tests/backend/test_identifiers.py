"""Generated-SQL hygiene: odd identifiers and atomic delta-code install.

Every identifier the code generators interpolate into SQL must be quoted:
a table or column named with a reserved word (``order``, ``group``,
``select``) has to round-trip through attach, reads, writes, evolution,
and migration on every version.  And ``regenerate()`` must be atomic — a
mid-install failure rolls back to the previous, complete delta code
instead of leaving half-installed views serving wrong answers.
"""

from __future__ import annotations

import pytest

from repro.backend import codegen
from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa
from repro.errors import BackendError
from repro.sql.connection import connect
from tests.backend.util import DualSystem


RESERVED_DDL = (
    "CREATE SCHEMA VERSION v1 WITH "
    "CREATE TABLE order(value INTEGER, group TEXT, select_ INTEGER);"
)


class TestReservedWordIdentifiers:
    def test_attach_with_reserved_table_and_column_names(self):
        engine = InVerDa()
        engine.execute(RESERVED_DDL)
        backend = LiveSqliteBackend.attach(engine)
        conn = connect(engine, "v1", autocommit=True, backend=backend)
        conn.execute("INSERT INTO order(value, group, select_) VALUES (1, 'a', 10)")
        assert conn.execute("SELECT value, group FROM order").fetchall() == [(1, "a")]
        backend.close()

    def test_reserved_word_round_trip_every_version(self):
        """attach → write/read on every version, through evolution and
        migration, with reserved-word table and column names throughout."""
        ds = DualSystem()
        ds.execute_ddl(RESERVED_DDL)
        ds.attach()
        ds.runmany(
            "v1",
            "INSERT INTO order(value, group, select_) VALUES (?, ?, ?)",
            [(1, "x", 10), (2, "y", 20), (3, "x", 30)],
        )
        ds.check("reserved names: initial")
        ds.execute_ddl(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "RENAME TABLE order INTO group;"
            "RENAME COLUMN group IN group TO order_;"
        )
        ds.run("v2", "INSERT INTO group(value, order_, select_) VALUES (4, 'z', 40)")
        ds.run("v1", "UPDATE order SET group = 'w' WHERE value = 1")
        ds.check("reserved names: evolved")
        ds.materialize("v2")
        ds.run("v2", "DELETE FROM group WHERE value = 2")
        ds.run("v1", "INSERT INTO order(value, group, select_) VALUES (5, 'v', 50)")
        ds.check("reserved names: migrated")
        ds.close()

    def test_generated_ddl_quotes_reserved_names(self):
        from repro.backend.emit import table_ddl

        ddl = table_ddl("order", ["group", "select"])
        assert '"order"' in ddl
        assert '"group"' in ddl and '"select"' in ddl


class TestAtomicRegenerate:
    def _attached(self):
        engine = InVerDa()
        engine.execute(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b TEXT);"
        )
        backend = LiveSqliteBackend.attach(engine)
        conn = connect(engine, "v1", autocommit=True, backend=backend)
        conn.executemany(
            "INSERT INTO R(a, b) VALUES (?, ?)", [(1, "x"), (2, "y")]
        )
        return engine, backend, conn

    def test_failed_regenerate_keeps_previous_delta_code(self, monkeypatch):
        engine, backend, conn = self._attached()
        real = codegen.trigger_statements

        def broken(eng):
            return real(eng) + ["THIS IS NOT SQL"]

        monkeypatch.setattr(codegen, "trigger_statements", broken)
        with pytest.raises(BackendError):
            backend.regenerate()
        monkeypatch.setattr(codegen, "trigger_statements", real)
        # The savepoint rolled the half-installed delta code back: the
        # previous views AND triggers still serve reads and writes.
        assert conn.execute("SELECT a FROM R ORDER BY a").fetchall() == [(1,), (2,)]
        conn.execute("INSERT INTO R(a, b) VALUES (3, 'z')")
        assert conn.execute("SELECT a FROM R ORDER BY a").fetchall() == [
            (1,),
            (2,),
            (3,),
        ]
        backend.close()

    def test_failed_regenerate_mid_views_keeps_previous_views(self, monkeypatch):
        engine, backend, conn = self._attached()
        real = codegen.view_statements

        def broken(eng, **kwargs):
            statements = real(eng, **kwargs)
            return statements[:1] + ["CREATE VIEW broken AS SELECT"] + statements[1:]

        monkeypatch.setattr(codegen, "view_statements", broken)
        with pytest.raises(BackendError):
            backend.regenerate()
        monkeypatch.setattr(codegen, "view_statements", real)
        views, triggers = codegen.generated_object_names(backend.connection)
        assert views and triggers  # the old generation is intact
        assert conn.execute("SELECT a FROM R ORDER BY a").fetchall() == [(1,), (2,)]
        backend.close()


class TestCloseSemantics:
    def test_backend_close_rolls_back_dangling_transaction(self):
        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine)
        conn = connect(engine, "v1", backend=backend)
        conn.execute("INSERT INTO R(a) VALUES (1)")
        assert conn.in_transaction
        backend.close()
        # The session was closed with a rollback and an epoch bump: the
        # dangling connection reports no transaction and its commit is an
        # inert no-op instead of a misdirected COMMIT.
        assert not conn.in_transaction
        conn.commit()
        conn.rollback()

    def test_session_handles_survive_cross_thread_use(self):
        import threading

        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine)
        conn = connect(engine, "v1", autocommit=True, backend=backend)
        errors = []

        def use():
            try:
                conn.execute("INSERT INTO R(a) VALUES (7)")
            except Exception as exc:  # pragma: no cover - the failure case
                errors.append(exc)

        thread = threading.Thread(target=use)
        thread.start()
        thread.join()
        assert not errors  # no check_same_thread pinning
        assert conn.execute("SELECT a FROM R").fetchall() == [(7,)]
        backend.close()
