"""Concurrent multi-session serving on the live backend.

Each SQL-layer connection leases its own pooled ``sqlite3`` session, so
many clients read and write co-existing schema versions at once.  These
tests drive the pool from multiple threads against a file-backed WAL
database (the serving configuration) and against the default shared-cache
in-memory database, and check that the interleaved outcome matches the
same workload applied sequentially to the pure-Python engine.
"""

from __future__ import annotations

import threading

import pytest

from repro.backend.compare import assert_states_match, visible_state
from repro.backend.pool import SessionPool, shared_memory_uri
from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa
from repro.errors import OperationalError
from repro.sql.connection import connect
from repro.workloads.tasky import build_tasky


def _run_threads(workers):
    errors = []

    def guard(fn):
        def run():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - the failure case
                errors.append(exc)

        return run

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestSessionPool:
    def test_sessions_are_independent_handles(self):
        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine)
        a = connect(engine, "v1", backend=backend)
        b = connect(engine, "v1", backend=backend)
        assert a._session is not b._session
        assert a._session.connection is not b._session.connection
        a.close()
        b.close()
        backend.close()

    def test_released_sessions_are_reused(self):
        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine)
        conn = connect(engine, "v1", autocommit=True, backend=backend)
        handle = conn._session.connection
        conn.close()
        assert backend.pool.idle == 1
        again = connect(engine, "v1", autocommit=True, backend=backend)
        assert again.execute("SELECT * FROM R").rowcount == 0
        assert again._session.connection is handle
        again.close()
        backend.close()

    def test_release_rolls_back_open_transaction(self):
        pool = SessionPool(shared_memory_uri(), uri=True)
        keeper = pool.connect()  # keeps the shared-cache database alive
        keeper.execute("CREATE TABLE t (x)")
        handle = pool.acquire()
        handle.execute("BEGIN")
        handle.execute("INSERT INTO t VALUES (1)")
        pool.release(handle)
        reused = pool.acquire()
        assert reused is handle
        assert not reused.in_transaction
        assert reused.execute("SELECT COUNT(*) FROM t").fetchone() == (0,)
        pool.release(reused)
        pool.close()
        keeper.close()

    def test_max_sessions_cap_times_out(self):
        pool = SessionPool(
            shared_memory_uri(), uri=True, max_sessions=1, acquire_timeout=0.05
        )
        held = pool.acquire()
        with pytest.raises(OperationalError):
            pool.acquire()
        pool.release(held)
        second = pool.acquire()  # the released session satisfies the cap
        pool.release(second)
        pool.close()

    def test_pool_size_bounds_idle_retention(self):
        pool = SessionPool(shared_memory_uri(), uri=True, pool_size=1)
        first, second = pool.acquire(), pool.acquire()
        pool.release(first)
        pool.release(second)
        assert pool.idle == 1  # the overflow handle was closed, not cached
        pool.close()


class TestWalIsolation:
    def test_file_database_runs_wal(self, tmp_path):
        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine, database=str(tmp_path / "r.db"))
        assert backend.connection.execute("PRAGMA journal_mode").fetchone() == ("wal",)
        backend.close()

    def test_uncommitted_writes_invisible_across_wal_sessions(self, tmp_path):
        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
        backend = LiveSqliteBackend.attach(engine, database=str(tmp_path / "r.db"))
        writer = connect(engine, "v1", backend=backend)
        reader = connect(engine, "v1", autocommit=True, backend=backend)
        writer.execute("INSERT INTO R(a) VALUES (1)")
        # Snapshot isolation: the reader's session sees committed state
        # only — and never blocks on the writer's open transaction.
        assert reader.execute("SELECT * FROM R").rowcount == 0
        writer.commit()
        assert reader.execute("SELECT * FROM R").rowcount == 1
        backend.close()

    def test_readers_proceed_while_writer_holds_transaction(self, tmp_path):
        scenario = build_tasky(100)
        backend = LiveSqliteBackend.attach(
            scenario.engine, database=str(tmp_path / "tasky.db")
        )
        writer = connect(scenario.engine, "TasKy", backend=backend)
        writer.execute("INSERT INTO Task(author, task, prio) VALUES ('W', 'w', 1)")

        def read(version, table):
            def run():
                conn = connect(
                    scenario.engine, version, autocommit=True, backend=backend
                )
                for _ in range(10):
                    assert conn.execute(f"SELECT * FROM {table}").rowcount == 100
                conn.close()

            return run

        _run_threads([read("TasKy", "Task"), read("TasKy2", "Task"), read("Do!", "Todo")][:2])
        writer.rollback()
        backend.close()


class TestConcurrentWorkload:
    @pytest.mark.parametrize("database", ["memory", "file"])
    def test_threaded_mixed_workload_matches_sequential_engine(
        self, tmp_path, database
    ):
        """N threads × mixed read/write across versions on the pooled
        backend == the same writes applied sequentially in memory."""
        num_threads, writes_each = 6, 12
        scenario = build_tasky(60, seed=11)
        target = (
            ":memory:" if database == "memory" else str(tmp_path / "stress.db")
        )
        backend = LiveSqliteBackend.attach(scenario.engine, database=target)
        reference = build_tasky(60, seed=11)

        versions = ["TasKy", "TasKy2", "Do!"]

        def with_write_retries(fn):
            # Shared-cache mode fails fast ("database table is locked")
            # when two sessions' writes collide; WAL queues on the busy
            # timeout instead.  Retrying is the shared-cache client's job.
            import time

            for _ in range(200):
                try:
                    return fn()
                except OperationalError as exc:
                    if "locked" not in str(exc):
                        raise
                    time.sleep(0.002)
            raise AssertionError("write never acquired the table lock")

        def rows_for(worker):
            return [
                (f"W{worker}", f"job {worker}-{i}", 1 + (worker + i) % 5)
                for i in range(writes_each)
            ]

        def worker(index):
            version = versions[index % 2]  # TasKy and TasKy2 accept inserts
            def run():
                conn = connect(
                    scenario.engine, version, autocommit=True, backend=backend
                )
                read = connect(
                    scenario.engine,
                    versions[(index + 1) % 3],
                    autocommit=True,
                    backend=backend,
                )
                for author, task, prio in rows_for(index):
                    if version == "TasKy":
                        with_write_retries(
                            lambda: conn.execute(
                                "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                                (author, task, prio),
                            )
                        )
                    else:
                        def insert_decomposed():
                            fk = conn.execute(
                                "SELECT id FROM Author ORDER BY id LIMIT 1"
                            ).fetchone()[0]
                            conn.execute(
                                "INSERT INTO Task(task, prio, author) VALUES (?, ?, ?)",
                                (task, prio, fk),
                            )

                        with_write_retries(insert_decomposed)
                    with_write_retries(
                        lambda: read.execute(
                            f"SELECT * FROM {'Todo' if read.version_name == 'Do!' else 'Task'}"
                        ).fetchall()
                    )
                conn.close()
                read.close()

            return run

        _run_threads([worker(i) for i in range(num_threads)])

        # Replay the same inserts sequentially on the reference engine.
        for index in range(num_threads):
            version = versions[index % 2]
            conn = connect(reference.engine, version, autocommit=True)
            for author, task, prio in rows_for(index):
                if version == "TasKy":
                    conn.execute(
                        "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
                        (author, task, prio),
                    )
                else:
                    fk = conn.execute(
                        "SELECT id FROM Author ORDER BY id LIMIT 1"
                    ).fetchone()[0]
                    conn.execute(
                        "INSERT INTO Task(task, prio, author) VALUES (?, ?, ?)",
                        (task, prio, fk),
                    )
        assert_states_match(
            reference.engine,
            visible_state(reference.engine),
            scenario.engine,
            visible_state(scenario.engine, backend),
        )
        backend.close()

    def test_concurrent_statements_during_catalog_transition(self, tmp_path):
        """DDL quiesces the pool and republishes delta code while reader
        threads keep issuing statements; nothing deadlocks or crashes."""
        scenario = build_tasky(50)
        backend = LiveSqliteBackend.attach(
            scenario.engine, database=str(tmp_path / "ddl.db")
        )
        stop = threading.Event()

        def churn():
            conn = connect(scenario.engine, "TasKy", autocommit=True, backend=backend)
            while not stop.is_set():
                conn.execute("SELECT * FROM Task").fetchall()
            conn.close()

        threads = [threading.Thread(target=churn) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            ddl = connect(scenario.engine, "TasKy", autocommit=True, backend=backend)
            ddl.execute("MATERIALIZE 'TasKy2';")
            ddl.execute(
                "CREATE SCHEMA VERSION zz FROM TasKy WITH RENAME TABLE Task INTO T2;"
            )
            ddl.close()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        zz = connect(scenario.engine, "zz", autocommit=True, backend=backend)
        assert zz.execute("SELECT * FROM T2").rowcount == 50
        backend.close()
