"""Read parity and generated-artifact structure of the live backend."""

from __future__ import annotations

import pytest

from repro.backend.compare import assert_states_match, visible_state
from repro.backend.sqlite import LiveSqliteBackend
from repro.core.engine import InVerDa
from repro.workloads.tasky import build_tasky
from tests.backend.util import DualSystem


def test_tasky_read_parity_every_version():
    scenario = build_tasky(30)
    backend = LiveSqliteBackend.attach(scenario.engine)
    state = visible_state(scenario.engine, backend)
    # The engine's own reads agree with SQLite's generated views verbatim
    # (same identifiers: the backend was attached to this very engine).
    for key, rows in visible_state(scenario.engine).items():
        assert state[key] == rows, key


def test_condition_decompose_reads():
    """The condition SMOs have no rule-generated views; the backend's
    templates must still serve them (the old snapshot backend could not)."""
    ds = DualSystem()
    ds.execute_ddl(
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Pair(x INTEGER, y INTEGER);"
    )
    ds.attach()
    ds.runmany(
        "v1",
        "INSERT INTO Pair(x, y) VALUES (?, ?)",
        [(1, 1), (2, 2), (3, 4), (5, 5)],
    )
    ds.execute_ddl(
        "CREATE SCHEMA VERSION v2 FROM v1 WITH "
        "DECOMPOSE TABLE Pair INTO Xs(x), Ys(y) ON x = y;"
    )
    ds.check("cond reads")
    ds.close()


def test_generated_sql_contains_views_and_triggers():
    scenario = build_tasky(5)
    backend = LiveSqliteBackend.attach(scenario.engine)
    sql = backend.generated_sql()
    assert sql.count("CREATE VIEW") == 6  # one per table version (3 versions)
    assert "INSTEAD OF INSERT" in sql
    assert "INSTEAD OF UPDATE" in sql
    assert "INSTEAD OF DELETE" in sql


def test_sqlite_master_round_trip_on_evolution():
    engine = InVerDa()
    engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
    backend = LiveSqliteBackend.attach(engine)
    views_before = {
        row[0]
        for row in backend.connection.execute(
            "SELECT name FROM sqlite_master WHERE type='view'"
        )
    }
    engine.execute("CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS a INTO R;")
    views_after = {
        row[0]
        for row in backend.connection.execute(
            "SELECT name FROM sqlite_master WHERE type='view'"
        )
    }
    assert views_before < views_after


def test_drop_schema_version_removes_scaffolding():
    engine = InVerDa()
    engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a TEXT, w TEXT);")
    backend = LiveSqliteBackend.attach(engine)
    engine.execute(
        "CREATE SCHEMA VERSION v2 FROM v1 WITH "
        "DECOMPOSE TABLE R INTO S(a), T(w) ON FK ref;"
    )
    assert any(name.startswith("put__") for name in backend.table_names())
    engine.execute("DROP SCHEMA VERSION v2;")
    leftovers = [
        name
        for name in backend.table_names()
        if name.startswith(("put__", "aux__"))
    ]
    assert leftovers == []


def test_drop_schema_version_regenerates():
    ds = DualSystem()
    ds.execute_ddl("CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER);")
    ds.attach()
    ds.runmany("v1", "INSERT INTO R(a) VALUES (?)", [(1,), (2,)])
    ds.execute_ddl("CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN b AS a * 2 INTO R;")
    ds.run("v2", "INSERT INTO R(a, b) VALUES (3, 9)")
    ds.execute_ddl("DROP SCHEMA VERSION v2;")
    ds.check("after drop")
    ds.run("v1", "INSERT INTO R(a) VALUES (4)")
    ds.check("write after drop")
    ds.close()
