import pytest

from repro.catalog.materialization import (
    current_materialization,
    enumerate_valid_materializations,
    materialization_for_versions,
    physical_table_versions,
    validate_materialization,
)
from repro.errors import MaterializationError
from tests.conftest import build_paper_tasky


@pytest.fixture
def tasky_genealogy():
    return build_paper_tasky().engine.genealogy


def _smo_by_type(genealogy, smo_type):
    return next(s for s in genealogy.evolution_smos() if s.smo_type == smo_type)


class TestValidity:
    def test_empty_schema_valid(self, tasky_genealogy):
        assert validate_materialization(tasky_genealogy, []) == frozenset()

    def test_condition_55_violation(self, tasky_genealogy):
        # DROP COLUMN without its upstream SPLIT violates (55).
        drop = _smo_by_type(tasky_genealogy, "DropColumn")
        with pytest.raises(MaterializationError):
            validate_materialization(tasky_genealogy, [drop])

    def test_condition_56_violation(self, tasky_genealogy):
        # SPLIT and DECOMPOSE both consume Task-0: violates (56).
        split = _smo_by_type(tasky_genealogy, "Split")
        decompose = _smo_by_type(tasky_genealogy, "Decompose")
        with pytest.raises(MaterializationError):
            validate_materialization(tasky_genealogy, [split, decompose])

    def test_valid_chain(self, tasky_genealogy):
        split = _smo_by_type(tasky_genealogy, "Split")
        drop = _smo_by_type(tasky_genealogy, "DropColumn")
        schema = validate_materialization(tasky_genealogy, [split, drop])
        assert len(schema) == 2


class TestEnumerationAndPhysical:
    def test_tasky_has_exactly_five(self, tasky_genealogy):
        """Section 8.3: 'the TasKy example has five valid materializations'."""
        assert len(enumerate_valid_materializations(tasky_genealogy)) == 5

    def test_table2_rows(self, tasky_genealogy):
        """Table 2: each schema maps to the right physical tables."""
        by_kinds = {}
        for schema in enumerate_valid_materializations(tasky_genealogy):
            kinds = frozenset(smo.smo_type for smo in schema)
            names = tuple(sorted(tv.name for tv in physical_table_versions(tasky_genealogy, schema)))
            by_kinds[kinds] = names
        assert by_kinds[frozenset()] == ("Task",)
        assert by_kinds[frozenset({"Split"})] == ("Todo",)
        assert by_kinds[frozenset({"Split", "DropColumn"})] == ("Todo",)
        assert by_kinds[frozenset({"Decompose"})] == ("Author", "Task")
        assert by_kinds[frozenset({"Decompose", "RenameColumn"})] == ("Author", "Task")

    def test_linear_chain_bound(self):
        """A chain of N dependent SMOs has N+1 valid materializations."""
        from repro.core.engine import InVerDa

        engine = InVerDa()
        engine.execute("CREATE SCHEMA VERSION v1 WITH CREATE TABLE T(a);")
        for index in range(3):
            engine.execute(
                f"CREATE SCHEMA VERSION v{index + 2} FROM v{index + 1} WITH "
                f"ADD COLUMN c{index} AS 0 INTO T;"
            )
        assert len(enumerate_valid_materializations(engine.genealogy)) == 4

    def test_independent_smos_bound(self):
        """N independent SMOs have 2^N valid materializations."""
        from repro.core.engine import InVerDa

        engine = InVerDa()
        engine.execute(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE A(x); CREATE TABLE B(y); CREATE TABLE C(z);"
        )
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH "
            "ADD COLUMN x2 AS 0 INTO A; ADD COLUMN y2 AS 0 INTO B; ADD COLUMN z2 AS 0 INTO C;"
        )
        assert len(enumerate_valid_materializations(engine.genealogy)) == 8


class TestMaterializeCommand:
    def test_for_versions(self, tasky_genealogy):
        version = tasky_genealogy.schema_version("TasKy2")
        schema = materialization_for_versions(tasky_genealogy, version.tables.values())
        kinds = {smo.smo_type for smo in schema}
        assert kinds == {"Decompose", "RenameColumn"}

    def test_conflicting_versions_rejected(self, tasky_genealogy):
        do_tables = tasky_genealogy.schema_version("Do!").tables.values()
        t2_tables = tasky_genealogy.schema_version("TasKy2").tables.values()
        with pytest.raises(MaterializationError):
            materialization_for_versions(
                tasky_genealogy, list(do_tables) + list(t2_tables)
            )

    def test_current_materialization_tracks_engine(self):
        scenario = build_paper_tasky()
        assert current_materialization(scenario.engine.genealogy) == frozenset()
        scenario.materialize("TasKy2")
        kinds = {smo.smo_type for smo in current_materialization(scenario.engine.genealogy)}
        assert kinds == {"Decompose", "RenameColumn"}
