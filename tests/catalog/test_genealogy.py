import pytest

from repro.errors import CatalogError
from tests.conftest import build_paper_tasky


@pytest.fixture
def genealogy():
    return build_paper_tasky().engine.genealogy


class TestStructure:
    def test_table_versions_linked(self, genealogy):
        task0 = genealogy.schema_version("TasKy").table_version("Task")
        assert task0.incoming is not None and task0.incoming.is_initial
        outgoing_types = sorted(smo.smo_type for smo in task0.outgoing)
        assert outgoing_types == ["Decompose", "Split"]

    def test_shared_table_versions(self, genealogy):
        """Untouched tables are shared between versions (paper, Sec. 3)."""
        engine = build_paper_tasky().engine
        engine.execute(
            "CREATE SCHEMA VERSION Extra FROM TasKy WITH CREATE TABLE Note(text TEXT);"
        )
        tasky_task = engine.genealogy.schema_version("TasKy").table_version("Task")
        extra_task = engine.genealogy.schema_version("Extra").table_version("Task")
        assert tasky_task is extra_task

    def test_every_target_has_one_incoming(self, genealogy):
        for tv in genealogy.table_versions.values():
            assert tv.incoming is not None

    def test_evolution_smos_excludes_create_table(self, genealogy):
        kinds = {smo.smo_type for smo in genealogy.evolution_smos()}
        assert "CreateTable" not in kinds
        assert len(genealogy.evolution_smos()) == 4  # split, dropcol, decompose, rename

    def test_acyclic_check_passes(self, genealogy):
        genealogy.check_acyclic()

    def test_aux_table_names_deterministic(self, genealogy):
        smo = genealogy.evolution_smos()[0]
        assert smo.aux_table_name("X") == smo.aux_table_name("X")

    def test_unknown_version(self, genealogy):
        with pytest.raises(CatalogError):
            genealogy.schema_version("nope")

    def test_describe_schema_version(self, genealogy):
        description = genealogy.schema_version("TasKy2").describe()
        assert description["Task"] == ("task", "prio", "author")
        assert description["Author"] == ("id", "name")


class TestUtilHelpers:
    def test_stopwatch_accumulates(self):
        from repro.util.timing import Stopwatch

        watch = Stopwatch()
        with watch:
            pass
        with watch:
            pass
        assert len(watch.laps) == 2
        assert watch.elapsed >= 0
        watch.reset()
        assert watch.elapsed == 0 and not watch.laps

    def test_physical_name_sanitizes(self):
        from repro.util.naming import physical_name

        assert physical_name("d", "1", "Do!") == "d__1__Do_"

    def test_quote_identifier(self):
        from repro.util.naming import quote_identifier

        assert quote_identifier("plain") == "plain"
        assert quote_identifier("select") == '"select"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_check_version_name(self):
        from repro.errors import SchemaError
        from repro.util.naming import check_version_name

        assert check_version_name("Do!") == "Do!"
        with pytest.raises(SchemaError):
            check_version_name("!bad")
