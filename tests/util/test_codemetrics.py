from repro.util.codemetrics import (
    count_characters,
    count_lines,
    count_statements,
    measure_code,
)


class TestLines:
    def test_counts_nonempty(self):
        assert count_lines("a\n\nb\n") == 2

    def test_skips_comments(self):
        assert count_lines("-- header\nSELECT 1;\n") == 1


class TestStatements:
    def test_semicolon_separated(self):
        assert count_statements("SELECT 1; SELECT 2;") == 2

    def test_trailing_unterminated(self):
        assert count_statements("SELECT 1; SELECT 2") == 2

    def test_semicolon_in_string(self):
        assert count_statements("SELECT 'a;b';") == 1

    def test_escaped_quote_in_string(self):
        assert count_statements("SELECT 'it''s; fine';") == 1

    def test_comment_semicolon_ignored(self):
        assert count_statements("SELECT 1 -- trailing;\n;") == 1

    def test_empty(self):
        assert count_statements("") == 0

    def test_whitespace_only_between_semicolons(self):
        assert count_statements("a; ; b;") == 2


class TestCharacters:
    def test_collapses_whitespace_runs(self):
        # "a  b" -> "a b"
        assert count_characters("a    b") == 3

    def test_strips_comment_lines(self):
        assert count_characters("-- x\nab") == 2


class TestRatios:
    def test_table3_style_ratio(self):
        bidel = measure_code("CREATE SCHEMA VERSION x FROM y WITH\nSPLIT TABLE a INTO b WITH c=1;")
        sql = measure_code("x;\n" * 100)
        ratio = sql.ratio_to(bidel)
        assert ratio.lines == 50.0
        assert ratio.statements == 100.0
