import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


@pytest.fixture
def task_schema():
    return TableSchema.of(
        "Task",
        [("author", DataType.TEXT), ("task", DataType.TEXT), ("prio", DataType.INTEGER)],
    )


class TestConstruction:
    def test_of_accepts_plain_names(self):
        schema = TableSchema.of("T", ["a", "b"])
        assert schema.column_names == ("a", "b")
        assert schema.columns[0].dtype is DataType.ANY

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.of("T", ["a", "a"])

    def test_invalid_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema.of("bad name", ["a"])

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            Column("bad-col")


class TestStructuralOps:
    def test_rename_column(self, task_schema):
        renamed = task_schema.rename_column("author", "name")
        assert renamed.column_names == ("name", "task", "prio")
        assert task_schema.column_names == ("author", "task", "prio")  # immutable

    def test_rename_to_existing_rejected(self, task_schema):
        with pytest.raises(SchemaError):
            task_schema.rename_column("author", "task")

    def test_add_column(self, task_schema):
        wider = task_schema.add_column(Column("done", DataType.BOOLEAN))
        assert wider.column_names[-1] == "done"

    def test_add_duplicate_rejected(self, task_schema):
        with pytest.raises(SchemaError):
            task_schema.add_column(Column("prio"))

    def test_drop_column(self, task_schema):
        narrower = task_schema.drop_column("prio")
        assert narrower.column_names == ("author", "task")

    def test_drop_last_column_rejected(self):
        schema = TableSchema.of("T", ["only"])
        with pytest.raises(SchemaError):
            schema.drop_column("only")

    def test_project(self, task_schema):
        projected = task_schema.project(["prio", "author"], table_name="P")
        assert projected.name == "P"
        assert projected.column_names == ("prio", "author")

    def test_with_name(self, task_schema):
        assert task_schema.with_name("Todo").name == "Todo"


class TestRowHandling:
    def test_row_from_mapping_fills_nulls(self, task_schema):
        row = task_schema.row_from_mapping({"author": "Ann"})
        assert row == ("Ann", None, None)

    def test_row_from_mapping_rejects_unknown(self, task_schema):
        with pytest.raises(SchemaError):
            task_schema.row_from_mapping({"nosuch": 1})

    def test_row_from_mapping_coerces(self, task_schema):
        row = task_schema.row_from_mapping({"author": "A", "task": "t", "prio": True})
        assert row == ("A", "t", 1)

    def test_row_from_sequence_arity_check(self, task_schema):
        with pytest.raises(SchemaError):
            task_schema.row_from_sequence(("a",))

    def test_round_trip(self, task_schema):
        mapping = {"author": "A", "task": "t", "prio": 2}
        assert task_schema.row_to_mapping(task_schema.row_from_mapping(mapping)) == mapping

    def test_null_row(self, task_schema):
        assert task_schema.is_null_row(task_schema.null_row())
        assert not task_schema.is_null_row(("A", None, None))
