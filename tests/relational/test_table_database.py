import pytest

from repro.errors import AccessError, SchemaError
from repro.relational.database import Database
from repro.relational.schema import TableSchema
from repro.relational.snapshot import diff_databases
from repro.relational.table import Table
from repro.relational.types import DataType, coerce_value, infer_type


@pytest.fixture
def table():
    t = Table(TableSchema.of("T", ["a", "b"]))
    t.insert(1, ("x", 1))
    t.insert(2, ("y", 2))
    return t


class TestTable:
    def test_insert_and_get(self, table):
        assert table.get(1) == ("x", 1)

    def test_duplicate_insert_rejected(self, table):
        with pytest.raises(AccessError):
            table.insert(1, ("z", 3))

    def test_upsert_overwrites(self, table):
        table.upsert(1, ("z", 3))
        assert table.get(1) == ("z", 3)

    def test_update_returns_old(self, table):
        assert table.update(1, ("z", 9)) == ("x", 1)

    def test_update_missing_raises(self, table):
        with pytest.raises(AccessError):
            table.update(99, ("z", 9))

    def test_delete(self, table):
        assert table.delete(2) == ("y", 2)
        assert 2 not in table

    def test_discard_missing_is_noop(self, table):
        assert table.discard(99) is None

    def test_copy_is_independent(self, table):
        clone = table.copy()
        clone.delete(1)
        assert 1 in table

    def test_data_equal_ignores_schema_name(self, table):
        other = table.copy(schema=table.schema.with_name("Other"))
        assert table.data_equal(other)

    def test_rows_as_mappings(self, table):
        assert {"a": "x", "b": 1} in table.rows_as_mappings()

    def test_type_enforcement_via_schema(self):
        t = Table(TableSchema.of("T", [("n", DataType.INTEGER)]))
        with pytest.raises(SchemaError):
            t.insert(1, ("not a number",))


class TestDatabase:
    def test_create_and_drop(self):
        db = Database()
        db.create_table(TableSchema.of("T", ["a"]))
        assert db.has_table("T")
        db.drop_table("T")
        assert not db.has_table("T")

    def test_create_duplicate_rejected(self):
        db = Database()
        db.create_table(TableSchema.of("T", ["a"]))
        with pytest.raises(SchemaError):
            db.create_table(TableSchema.of("T", ["a"]))

    def test_sequences_monotonic(self):
        db = Database()
        values = [db.next_value() for _ in range(5)]
        assert values == [1, 2, 3, 4, 5]

    def test_named_sequences_independent(self):
        db = Database()
        db.next_value("x")
        assert db.next_value("y") == 1

    def test_clone_deep_copies_tables(self):
        db = Database()
        db.create_table(TableSchema.of("T", ["a"])).insert(1, ("x",))
        clone = db.clone()
        clone.table("T").delete(1)
        assert 1 in db.table("T")


class TestSnapshot:
    def test_diff_detects_all_change_kinds(self):
        before = Database()
        before.create_table(TableSchema.of("T", ["a"]))
        before.table("T").insert(1, ("x",))
        before.table("T").insert(2, ("y",))
        after = before.clone()
        after.table("T").delete(1)
        after.table("T").upsert(2, ("z",))
        after.table("T").insert(3, ("w",))
        after.create_table(TableSchema.of("New", ["b"]))

        diff = diff_databases(before, after)
        assert diff.created_tables == ("New",)
        table_diff = diff.table_diffs["T"]
        assert table_diff.removed == {1: ("x",)}
        assert table_diff.changed == {2: (("y",), ("z",))}
        assert table_diff.added == {3: ("w",)}

    def test_empty_diff(self):
        db = Database()
        db.create_table(TableSchema.of("T", ["a"]))
        assert diff_databases(db, db.clone()).empty


class TestTypes:
    @pytest.mark.parametrize(
        "value,dtype,expected",
        [
            (1, DataType.INTEGER, 1),
            (True, DataType.INTEGER, 1),
            (2.0, DataType.INTEGER, 2),
            (3, DataType.REAL, 3.0),
            ("x", DataType.TEXT, "x"),
            (1, DataType.BOOLEAN, True),
            (None, DataType.INTEGER, None),
            ("anything", DataType.ANY, "anything"),
        ],
    )
    def test_coercion(self, value, dtype, expected):
        assert coerce_value(value, dtype) == expected

    @pytest.mark.parametrize(
        "value,dtype",
        [(2.5, DataType.INTEGER), ("x", DataType.REAL), (1.5, DataType.BOOLEAN), (3, DataType.TEXT)],
    )
    def test_rejections(self, value, dtype):
        with pytest.raises(SchemaError):
            coerce_value(value, dtype)

    def test_infer(self):
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(3) is DataType.INTEGER
        assert infer_type(3.5) is DataType.REAL
        assert infer_type("s") is DataType.TEXT
        assert infer_type(None) is DataType.ANY

    def test_parse_aliases(self):
        assert DataType.parse("varchar") is DataType.TEXT
        assert DataType.parse("int") is DataType.INTEGER
        with pytest.raises(SchemaError):
            DataType.parse("blob9")
