"""Seeded-defect tests for the invariant probes: drive each probe with a
deliberately broken history and assert it fires with the right report —
then with the matching clean history and assert it stays quiet."""

from __future__ import annotations

import pytest

from repro.backend import codegen
from repro.check.delta import verify_delta_code
from repro.core.engine import InVerDa
from repro.errors import OperationalError
from repro.soak.probes import (
    PROBE_FACTORIES,
    AvailabilityProbe,
    BoundedLatencyProbe,
    CleanDropProbe,
    DeltaVerifierProbe,
    DifferentialProbe,
    FinalState,
    MonotoneGenerationProbe,
    NoLostWritesProbe,
    make_probes,
)


def final_state(**overrides):
    base = dict(
        order_rows_by_version={"v1": {1, 2, 3}, "v2": {1, 2, 3}},
        active_versions=["v1", "v2"],
        engine_generation=5,
        gauge_generation=5.0,
        disk_generation=5,
        ddl_windows=[],
        barrier_windows=[],
        p95_budget_ms=100.0,
        delta_findings=[],
    )
    base.update(overrides)
    return FinalState(**base)


class TestRegistry:
    def test_all_probes_are_registered(self):
        assert set(PROBE_FACTORIES) == {
            "lost-writes",
            "clean-drop",
            "generation",
            "latency",
            "differential",
            "delta",
            "availability",
        }

    def test_make_probes_defaults_to_all(self):
        assert {probe.name for probe in make_probes()} == set(PROBE_FACTORIES)

    def test_make_probes_selects_by_name(self):
        (probe,) = make_probes(["lost-writes"])
        assert isinstance(probe, NoLostWritesProbe)

    def test_make_probes_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown probe"):
            make_probes(["lost-writes", "nope"])


class TestNoLostWrites:
    def test_fires_when_an_acked_write_vanishes(self):
        probe = NoLostWritesProbe()
        for order_no in (1, 2, 3, 99):
            probe.on_ack("v1", "Orders", order_no)
        report = probe.finalize(final_state())  # 99 is nowhere visible
        assert not report.ok
        assert report.details["lost"] == 1
        assert "99" in report.violations[0] and "v1" in report.violations[0]

    def test_deleted_writes_are_not_expected(self):
        probe = NoLostWritesProbe()
        for order_no in (1, 2, 3, 4):
            probe.on_ack("v1", "Orders", order_no)
        probe.on_delete("v1", 4)
        report = probe.finalize(final_state())  # 4 is gone — by request
        assert report.ok
        assert report.details == {"acked": 4, "deleted": 1, "checked": 3, "lost": 0}

    def test_visibility_in_any_version_suffices(self):
        probe = NoLostWritesProbe()
        probe.on_ack("v2", "Open", 7)
        report = probe.finalize(
            final_state(order_rows_by_version={"v1": set(), "v2": {7}})
        )
        assert report.ok


class TestCleanDrop:
    def test_clean_operational_error_passes(self):
        probe = CleanDropProbe()
        probe.on_version_lost("v3", OperationalError("version 'v3' was dropped"), True)
        report = probe.finalize(final_state())
        assert report.ok
        assert report.details == {"drops_observed": 1, "dirty": 0}

    def test_wrong_error_class_fires(self):
        probe = CleanDropProbe()
        probe.on_version_lost("v3", ValueError("boom"), False)
        report = probe.finalize(final_state())
        assert not report.ok
        assert "v3" in report.violations[0]
        assert "ValueError" in report.violations[0]


class TestMonotoneGeneration:
    def test_clean_samples_pass(self):
        probe = MonotoneGenerationProbe()
        for engine_value in (3, 3, 4, 5, 5):
            probe.on_generation_sample(engine_value, float(engine_value))
        assert probe.finalize(final_state()).ok

    def test_skipped_bump_regression_fires(self):
        probe = MonotoneGenerationProbe()
        for engine_value in (3, 4, 3):
            probe.on_generation_sample(engine_value, float(engine_value))
        report = probe.finalize(final_state())
        assert not report.ok
        assert "regressed from 4 to 3" in report.violations[0]

    def test_gauge_may_trail_by_at_most_one(self):
        probe = MonotoneGenerationProbe()
        probe.on_generation_sample(5, 4.0)  # sampler caught the gap: fine
        assert probe.finalize(final_state()).ok
        probe = MonotoneGenerationProbe()
        probe.on_generation_sample(5, 3.0)  # two behind: the bump was lost
        report = probe.finalize(final_state())
        assert not report.ok
        assert "gauge read 3.0" in report.violations[0]

    def test_final_gauge_mismatch_fires(self):
        report = MonotoneGenerationProbe().finalize(
            final_state(gauge_generation=4.0)
        )
        assert not report.ok
        assert "final gauge 4.0" in report.violations[0]

    def test_disk_generation_mismatch_fires(self):
        report = MonotoneGenerationProbe().finalize(final_state(disk_generation=4))
        assert not report.ok
        assert "on-disk generation 4" in report.violations[0]

    def test_memory_only_runs_skip_the_disk_check(self):
        assert MonotoneGenerationProbe().finalize(
            final_state(disk_generation=None)
        ).ok


class TestBoundedLatency:
    def test_slow_ops_inside_ddl_windows_fire(self):
        probe = BoundedLatencyProbe()
        for start in (1.0, 1.1, 1.2):
            probe.on_op(start, start + 0.5, "read")  # 500 ms, budget 100
        report = probe.finalize(final_state(ddl_windows=[(0.9, 2.0)]))
        assert not report.ok
        assert report.details["ops_during_ddl"] == 3
        assert "over the 100 ms budget" in report.violations[0]

    def test_slow_ops_outside_ddl_windows_do_not_count(self):
        probe = BoundedLatencyProbe()
        probe.on_op(5.0, 5.5, "read")
        report = probe.finalize(final_state(ddl_windows=[(0.9, 2.0)]))
        assert report.ok
        assert report.details["ops_during_ddl"] == 0

    def test_barrier_windows_are_excluded(self):
        probe = BoundedLatencyProbe()
        probe.on_op(1.0, 1.5, "read")
        report = probe.finalize(
            final_state(ddl_windows=[(0.9, 2.0)], barrier_windows=[(0.95, 1.6)])
        )
        assert report.ok
        assert report.details["ops"] == 1 and report.details["ops_during_ddl"] == 0


class TestAvailability:
    def test_stalled_serving_during_backfill_fires(self):
        probe = AvailabilityProbe()
        probe.on_op(0.1, 0.2, "read")  # before the move
        probe.on_op(4.0, 4.1, "read")  # after the move
        report = probe.finalize(final_state(backfill_windows=[(1.0, 3.0)]))
        assert not report.ok
        assert "serving stalled" in report.violations[0]
        assert report.details["ops_during_backfill"] == 0

    def test_over_budget_p95_during_backfill_fires(self):
        probe = AvailabilityProbe()
        for start in (1.0, 1.4, 1.8, 2.2):
            probe.on_op(start, start + 0.3, "write")  # 300 ms, budget 100
        report = probe.finalize(final_state(backfill_windows=[(0.9, 3.0)]))
        assert not report.ok
        assert "over the 100 ms budget" in report.violations[0]

    def test_flowing_bounded_ops_pass(self):
        probe = AvailabilityProbe()
        for start in (1.0, 1.5, 2.0, 2.5):
            probe.on_op(start, start + 0.01, "read")
        report = probe.finalize(final_state(backfill_windows=[(0.9, 3.0)]))
        assert report.ok
        assert report.details["ops_during_backfill"] == 4

    def test_short_window_may_contain_no_ops(self):
        # A one-chunk move can finish between two client ops.
        probe = AvailabilityProbe()
        probe.on_op(0.1, 0.2, "read")
        report = probe.finalize(final_state(backfill_windows=[(1.0, 1.2)]))
        assert report.ok

    def test_no_backfill_windows_pass_vacuously(self):
        probe = AvailabilityProbe()
        probe.on_op(0.1, 0.2, "read")
        report = probe.finalize(final_state())
        assert report.ok
        assert report.details["backfill_windows"] == 0

    def test_barrier_overlapping_ops_are_excluded(self):
        probe = AvailabilityProbe()
        probe.on_op(1.0, 1.5, "read")  # slow, but inside a barrier pause
        for start in (2.0, 2.2, 2.4):
            probe.on_op(start, start + 0.01, "read")
        report = probe.finalize(
            final_state(
                backfill_windows=[(0.9, 3.0)], barrier_windows=[(0.95, 1.6)]
            )
        )
        assert report.ok
        assert report.details["ops_during_backfill"] == 3


class TestDifferential:
    def test_any_failed_barrier_fires(self):
        probe = DifferentialProbe()
        probe.on_barrier(0, True, "")
        probe.on_barrier(1, False, "rows differ in ('v1', 'Orders')")
        report = probe.finalize(final_state())
        assert not report.ok
        assert report.details == {"barriers": 2, "failed": 1}
        assert "barrier #1" in report.violations[0]

    def test_all_clean_barriers_pass(self):
        probe = DifferentialProbe()
        for index in range(3):
            probe.on_barrier(index, True, "")
        assert probe.finalize(final_state()).ok


class TestDeltaVerifier:
    @pytest.fixture
    def engine(self):
        engine = InVerDa()
        engine.execute(
            "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INTEGER, b INTEGER);"
        )
        engine.execute(
            "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c AS a + 1 INTO R;"
        )
        return engine

    def test_clean_emission_passes(self, engine):
        findings = verify_delta_code(engine, flatten=True)
        assert DeltaVerifierProbe().finalize(
            final_state(delta_findings=findings)
        ).ok

    def test_dangling_view_fires(self, engine):
        """The seeded defect: a view left pointing at a data table that no
        longer exists (the verifier's RPC101 class)."""
        views = codegen.view_statements(engine, flatten=True)
        triggers = codegen.trigger_statements(engine)
        views = [s.replace("d__0__R", "d__9__GONE") for s in views]
        findings = verify_delta_code(
            engine, view_statements=views, trigger_statements=triggers
        )
        report = DeltaVerifierProbe().finalize(final_state(delta_findings=findings))
        assert not report.ok
        assert report.details["errors"] >= 1
        assert any("RPC101" in violation for violation in report.violations)

    def test_warnings_alone_do_not_fire(self):
        """Severity matters: warning-level findings show up in the details
        but are not violations."""

        class StyleNit:
            severity = "warning"

        report = DeltaVerifierProbe().finalize(
            final_state(delta_findings=[StyleNit()])
        )
        assert report.ok
        assert report.details == {"findings": 1, "errors": 0}
