"""Short end-to-end soak runs: a few seconds per transport with the SMO
stream live, plus the fault-injection replay contract.  Marked
``soak_quick`` so they can be deselected (``-m 'not soak_quick'``); the
full-length runs live in CI's soak-smoke job, not in the test suite."""

from __future__ import annotations

import pytest

from repro.soak import PROBE_FACTORIES, SoakConfig, run_soak

pytestmark = pytest.mark.soak_quick


def quick_config(**overrides):
    base = dict(
        seed=1,
        duration=2.5,
        clients=4,
        smo_rate=2.0,
        barrier_interval=1.0,
        transport="inproc",
    )
    base.update(overrides)
    return SoakConfig(**base)


def brief(report):
    """The failure context worth seeing when a quick soak goes red."""
    return {
        "repro": report["repro_command"],
        "probes": [p for p in report["probes"] if not p["ok"]],
        "fault": report["fault"],
        "client_errors": report["client_errors"],
        "smo_log": report["smo_log"],
    }


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
def test_quick_soak_passes_on_both_transports(transport):
    report = run_soak(quick_config(transport=transport))
    assert report["ok"], brief(report)
    stats = report["stats"]
    assert stats["ops"] > 0
    assert stats["barriers"] >= 1
    assert {probe["name"] for probe in report["probes"]} == set(PROBE_FACTORIES)
    assert all(probe["ok"] for probe in report["probes"])
    assert f"--transport {transport}" in report["repro_command"]


def test_probe_selection_narrows_the_report():
    report = run_soak(quick_config(duration=1.0, probes=["lost-writes"]))
    assert [probe["name"] for probe in report["probes"]] == ["lost-writes"]


def test_injected_fault_reproduces_from_the_printed_seed():
    """The replay contract: a fault report carries the exact seed and
    fault spec, and re-running the same configuration dies at the same
    transition on the same script."""
    config = dict(
        seed=9,
        duration=6.0,
        clients=2,
        smo_rate=5.0,
        barrier_interval=30.0,
        fault_rates={"evolution:before-commit": 1.0},
    )
    first = run_soak(quick_config(**config))
    assert not first["ok"]
    assert first["fault"] is not None, brief(first)
    assert first["fault"]["point"] == "evolution:before-commit"
    assert "--inject-fault 'evolution:before-commit=1'" in first["repro_command"]
    assert first["injector"]["fired"]

    second = run_soak(quick_config(**config))
    assert second["fault"] is not None, brief(second)
    # Everything ahead of the first evolution is seed-deterministic, so
    # the replay dies on the same script at the same injector visit.
    assert second["fault"]["point"] == first["fault"]["point"]
    assert second["fault"]["script"] == first["fault"]["script"]
    assert second["fault"]["visit"] == first["fault"]["visit"]
