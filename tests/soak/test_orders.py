"""The order/inventory workload: differential round-trips under every
materialization, seeded determinism, version-pin skew, and the
structural table classification the soak clients rely on."""

from __future__ import annotations

import random

import pytest

from repro.backend.compare import visible_state
from repro.testing import DualSystem
from repro.workloads.orders import (
    ORDER_NO_STRIDE,
    ORDERS_SCRIPTS,
    assign_version_pins,
    build_orders,
    inventory_row,
    inventory_tables,
    order_no_for,
    order_row,
    order_tables,
    tenant_name,
)


class TestDifferentialRoundTrips:
    def test_scenario_round_trips_under_every_materialization(self, tmp_path):
        ds = DualSystem(database=str(tmp_path / "orders.db"))
        ds.execute_ddl(ORDERS_SCRIPTS[0])
        ds.attach()
        rng = random.Random(3)
        ds.runmany(
            "v1",
            "INSERT INTO Orders(tenant, order_no, qty, status) VALUES (?, ?, ?, ?)",
            [
                order_row(rng, tenant_name(index), order_no_for(index, serial))
                for index in range(2)
                for serial in range(8)
            ],
        )
        ds.runmany(
            "v1",
            "INSERT INTO Inventory(sku, stock, reserved) VALUES (?, ?, ?)",
            [inventory_row(rng, tenant_name(0), serial) for serial in range(3)],
        )
        try:
            for script in ORDERS_SCRIPTS[1:]:
                ds.execute_ddl(script)
            ds.check("built")
            for target in ("v1", "v2", "v3"):
                ds.materialize(target)
                ds.check(f"materialized-{target}")
                # Writes through every version still agree afterwards.
                ds.run(
                    "v1",
                    "UPDATE Orders SET qty = ? WHERE order_no = ?",
                    (7, order_no_for(0, 1)),
                )
                ds.run(
                    "v2",
                    "INSERT INTO Orders(tenant, order_no, qty, status, total)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (tenant_name(0), order_no_for(0, 100 + ord(target[1])), 2, 0, 200),
                )
                ds.run(
                    "v3",
                    "DELETE FROM Closed WHERE order_no = ?",
                    (order_no_for(1, 1) if target == "v1" else -1,),
                )
                ds.check(f"written-under-{target}")
        finally:
            ds.close()

    def test_split_conditions_are_complementary(self):
        """Every order row is visible in exactly one of v3's partitions —
        what makes the lost-write probe's union check sound."""
        scenario = build_orders(tenants=2, orders_per_tenant=10, seed=7)
        state = visible_state(scenario.engine)
        v1_rows = {row[1] for row in state[("v1", "Orders")]}
        open_rows = {row[1] for row in state[("v3", "Open")]}
        closed_rows = {row[1] for row in state[("v3", "Closed")]}
        assert open_rows | closed_rows == v1_rows
        assert not open_rows & closed_rows


class TestDeterminism:
    def test_same_arguments_build_identical_states(self):
        build = dict(tenants=3, orders_per_tenant=9, inventory_per_tenant=2, seed=13)
        first = build_orders(**build)
        second = build_orders(**build)
        assert visible_state(first.engine) == visible_state(second.engine)
        assert first.versions == second.versions == ["v1", "v2", "v3"]

    def test_different_seeds_differ(self):
        first = build_orders(tenants=2, orders_per_tenant=9, seed=1)
        second = build_orders(tenants=2, orders_per_tenant=9, seed=2)
        assert visible_state(first.engine) != visible_state(second.engine)

    def test_version_count_is_validated(self):
        with pytest.raises(ValueError, match="versions"):
            build_orders(versions=4)
        assert build_orders(tenants=1, versions=1).versions == ["v1"]


class TestIdentity:
    def test_tenant_strides_are_disjoint(self):
        assert tenant_name(3) == "t03"
        assert order_no_for(1, 0) - order_no_for(0, 0) == ORDER_NO_STRIDE
        highest = order_no_for(0, ORDER_NO_STRIDE - 1)
        assert highest < order_no_for(1, 0)

    def test_tables_are_classified_structurally(self):
        scenario = build_orders(tenants=1, orders_per_tenant=2)
        genealogy = scenario.engine.genealogy
        v1, v3 = genealogy.schema_version("v1"), genealogy.schema_version("v3")
        assert order_tables(v1) == ["Orders"]
        assert inventory_tables(v1) == ["Inventory"]
        assert order_tables(v3) == ["Closed", "Open"]  # split, sorted
        assert inventory_tables(v3) == ["Inventory"]


class TestVersionPins:
    VERSIONS = ["v1", "v2", "v3"]

    def test_deterministic_for_a_fixed_seed(self):
        first = assign_version_pins(self.VERSIONS, 50, seed=5)
        second = assign_version_pins(self.VERSIONS, 50, seed=5)
        assert first == second
        assert set(first) <= set(self.VERSIONS)

    def test_skew_prefers_old_versions(self):
        pins = assign_version_pins(self.VERSIONS, 600, seed=5, skew=2.0)
        counts = [pins.count(version) for version in self.VERSIONS]
        assert counts[0] > counts[1] > counts[2]
        # skew=2 weights 9:4:1 — the oldest version dominates.
        assert counts[0] > len(pins) / 2

    def test_zero_skew_is_uniformish(self):
        pins = assign_version_pins(self.VERSIONS, 600, seed=5, skew=0.0)
        counts = [pins.count(version) for version in self.VERSIONS]
        assert all(count > 100 for count in counts)

    def test_empty_versions_are_rejected(self):
        with pytest.raises(ValueError, match="at least one version"):
            assign_version_pins([], 4)
