"""The randomized SMO stream: seeded determinism, preflight-clean
output, version-count bounds, and identity-column protection."""

from __future__ import annotations

from repro.check import error_count, preflight_script
from repro.soak.stream import SmoStream
from repro.workloads.orders import (
    PROTECTED_COLUMNS,
    build_orders,
    inventory_tables,
    order_tables,
)


def fresh_engine(seed=5):
    return build_orders(
        tenants=2, orders_per_tenant=6, inventory_per_tenant=2, seed=seed
    ).engine


def apply_events(engine, stream, count):
    """Drive ``count`` stream events through the preflight gate onto the
    engine, exactly as the harness does; returns the applied scripts."""
    applied = []
    for _ in range(count):
        generated = stream.next_script()
        if generated is None:
            continue
        kind, script = generated
        if error_count(preflight_script(engine, script)):
            continue
        engine.execute(script)
        applied.append((kind, script))
    return applied


class TestGeneration:
    def test_scripts_apply_in_sequence_against_the_live_catalog(self):
        engine = fresh_engine()
        stream = SmoStream(engine, seed=1)
        applied = apply_events(engine, stream, 25)
        # The generator derives every script from the current catalog, so
        # nearly everything it emits must survive the preflight gate.
        assert len(applied) >= 20
        kinds = {kind for kind, _ in applied}
        assert "evolve" in kinds

    def test_same_seed_same_engine_same_stream(self):
        first_engine, second_engine = fresh_engine(), fresh_engine()
        first = apply_events(first_engine, SmoStream(first_engine, seed=9), 15)
        second = apply_events(second_engine, SmoStream(second_engine, seed=9), 15)
        assert first == second
        assert first_engine.version_names() == second_engine.version_names()

    def test_different_seeds_diverge(self):
        first_engine, second_engine = fresh_engine(), fresh_engine()
        first = apply_events(first_engine, SmoStream(first_engine, seed=9), 15)
        second = apply_events(second_engine, SmoStream(second_engine, seed=10), 15)
        assert first != second


class TestVersionBounds:
    def test_version_count_stays_within_min_and_max(self):
        engine = fresh_engine()
        stream = SmoStream(engine, seed=4, min_versions=2, max_versions=4)
        for _ in range(40):
            generated = stream.next_script()
            if generated is None:
                continue
            _, script = generated
            if error_count(preflight_script(engine, script)):
                continue
            engine.execute(script)
            assert 2 <= len(engine.version_names()) <= 4

    def test_drops_only_remove_leaf_versions(self):
        engine = fresh_engine()
        stream = SmoStream(engine, seed=4)
        for _ in range(40):
            actives = engine.version_names()
            droppable = stream._droppable(actives)
            parents = {
                engine.genealogy.schema_version(name).parent for name in actives
            }
            assert not set(droppable) & parents
            generated = stream.next_script()
            if generated is None:
                continue
            _, script = generated
            if not error_count(preflight_script(engine, script)):
                engine.execute(script)


class TestProtectedColumns:
    def test_identity_columns_survive_every_generated_version(self):
        """Whatever the stream does — renames, splits, drops — every
        surviving version must keep addressable order and inventory
        tables, or pinned clients could not run their keyed SQL."""
        engine = fresh_engine()
        stream = SmoStream(engine, seed=21)
        apply_events(engine, stream, 30)
        for name in engine.version_names():
            version = engine.genealogy.schema_version(name)
            orders = order_tables(version)
            inventory = inventory_tables(version)
            assert orders, f"{name} lost all order tables"
            assert inventory, f"{name} lost all inventory tables"
            for table in orders:
                columns = set(version.tables[table].schema.column_names)
                assert {"tenant", "order_no"} <= columns
            for table in inventory:
                assert "sku" in version.tables[table].schema.column_names

    def test_protected_columns_never_named_in_destructive_smos(self):
        engine = fresh_engine()
        stream = SmoStream(engine, seed=33)
        applied = apply_events(engine, stream, 30)
        for _, script in applied:
            for column in PROTECTED_COLUMNS:
                assert f"DROP COLUMN {column} " not in script
                assert f"RENAME COLUMN {column} " not in script
