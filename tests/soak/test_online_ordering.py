"""Oplog ordering for online MATERIALIZE.

MATERIALIZE is not order-neutral in the differential oplog: it freezes
derived ``ADD COLUMN`` payloads into stored aux state, so a client write
that executes after the cutover but lands in the log *before* the move's
DDL entry replays against pre-freeze semantics and the oracle diverges.
The harness therefore appends the DDL entry from inside the engine's
``online_cutover_hook``, under the stream write lock — the move's true
serialization point.
"""

from __future__ import annotations

import pytest

from repro.soak.harness import LogEntry, SoakConfig, SoakHarness


@pytest.fixture
def harness():
    h = SoakHarness(SoakConfig(seed=5, duration=1.0, clients=2))
    h._build()
    yield h
    h._teardown([])


class TestCutoverBarrier:
    def test_ddl_entry_lands_inside_the_cutover_window(self, harness):
        h = harness
        assert h.live.online_cutover_hook is not None
        h._online_script = "MATERIALIZE ONLINE 'v1';"
        before = len(h.oplog)
        h.live.execute("MATERIALIZE ONLINE 'v1';")
        # The hook consumed the pending script and appended exactly one
        # DDL entry at the cutover's serialization point.
        assert h._online_script is None
        entries = h.oplog[before:]
        assert [e.kind for e in entries] == ["ddl"]
        assert entries[0] == LogEntry("ddl", None, "MATERIALIZE ONLINE 'v1';", ())

    def test_freeze_semantics_make_ordering_observable(self, harness):
        """The reason ordering matters: an update to a derived column's
        input replayed before vs after MATERIALIZE yields different
        frozen payloads.  Replaying the log in harness order must match
        the live engine — this is the soak-found divergence, determinized."""
        from repro.sql.connection import connect

        h = harness
        h.live.execute(
            "CREATE SCHEMA VERSION d1 FROM v1 WITH "
            "ADD COLUMN dc AS status + status INTO Orders;"
        )
        h.oplog.append(
            LogEntry(
                "ddl",
                None,
                "CREATE SCHEMA VERSION d1 FROM v1 WITH "
                "ADD COLUMN dc AS status + status INTO Orders;",
                (),
            )
        )
        live_v1 = connect(h.live, "v1", autocommit=True, backend=h.backend)
        live_v1.execute(
            "UPDATE Orders SET status = ? WHERE order_no = ?", (9, 0)
        )
        h.log_sql("v1", "UPDATE Orders SET status = ? WHERE order_no = ?", (9, 0))
        h._online_script = "MATERIALIZE ONLINE 'd1';"
        h.live.execute("MATERIALIZE ONLINE 'd1';")
        live_d1 = connect(h.live, "d1", autocommit=True, backend=h.backend)
        frozen = live_d1.execute(
            "SELECT dc FROM Orders WHERE order_no = ?", (0,)
        ).fetchall()
        assert frozen == [(18,)]  # frozen from the updated status, 9 + 9

        # The oracle replay of the log in harness order agrees.
        h._replay()
        oracle = connect(h.mem, "d1", autocommit=True)
        assert oracle.execute(
            "SELECT dc FROM Orders WHERE order_no = ?", (0,)
        ).fetchall() == [(18,)]
        oracle.close()
        live_v1.close()
        live_d1.close()


class TestOplogDump:
    def test_divergence_dump_is_env_gated(self, harness, tmp_path, monkeypatch):
        h = harness
        h.log_sql("v1", "UPDATE Orders SET qty = ? WHERE order_no = ?", (3, 7))
        monkeypatch.delenv("REPRO_SOAK_OPLOG_DUMP", raising=False)
        h._dump_oplog(0, "detail")  # no env var: writes nothing
        path = tmp_path / "oplog.txt"
        monkeypatch.setenv("REPRO_SOAK_OPLOG_DUMP", str(path))
        h._dump_oplog(1, "visible states differ: ...")
        text = path.read_text()
        assert "# barrier #1 diverged" in text
        assert "UPDATE Orders SET qty = ? WHERE order_no = ?" in text
        assert "(3, 7)" in text
