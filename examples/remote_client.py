"""Network serving: the wire-protocol server and the remote client driver.

The paper promises that every co-existing schema version is served to
applications as an ordinary database. This walkthrough makes that
literal over TCP: it starts a :class:`repro.ReproServer` on an ephemeral
port (backed by a file-based WAL SQLite database), then drives it with
``repro.connect_remote`` clients, showing

1. the identical PEP-249 surface on both transports,
2. per-client sessions (independent transactions, snapshot reads),
3. result paging and statement pipelining,
4. a catalog transition (DROP SCHEMA VERSION) surfacing to a bound
   client as a clean protocol error.

Run with: PYTHONPATH=src python examples/remote_client.py
"""

import tempfile
import os

import repro
from repro.backend.sqlite import LiveSqliteBackend
from repro.errors import OperationalError

db = repro.InVerDa()
db.execute("""
    CREATE SCHEMA VERSION TasKy WITH
    CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
""")
repro.connect(db, "TasKy", autocommit=True).executemany(
    "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
    [("Ann", "Organize party", 3), ("Ben", "Learn for exam", 2),
     ("Ann", "Write paper", 1), ("Ben", "Clean room", 1)],
)
db.execute("""
    CREATE SCHEMA VERSION Do! FROM TasKy WITH
    SPLIT TABLE Task INTO Todo WITH prio = 1;
    DROP COLUMN prio FROM Todo DEFAULT 1;
""")

tmpdir = tempfile.mkdtemp(prefix="repro-remote-")
backend = LiveSqliteBackend.attach(db, database=os.path.join(tmpdir, "tasky.db"))

# ---------------------------------------------------------------------------
# 1. Serve, then connect like any database client
# ---------------------------------------------------------------------------
server = repro.serve(db, port=0)  # ephemeral port; use --port in production
host, port = server.address
print(f"serving {db.version_names()} on {host}:{port}\n")

tasky = repro.connect_remote(host, port, "TasKy", autocommit=True)
do = repro.connect_remote(host, port, "Do!", autocommit=True)
print("TasKy over TCP:", tasky.execute(
    "SELECT author, task FROM Task WHERE prio = ?", (1,)).fetchall())
print("Do!   over TCP:", do.execute(
    "SELECT author, task FROM Todo ORDER BY task").fetchall())

# ---------------------------------------------------------------------------
# 2. Every client is its own server-side session
# ---------------------------------------------------------------------------
status = tasky.server_status()
print(f"\nserver status: {status['clients']} clients, "
      f"{status['pool']['leased']} leased sessions")

txn = repro.connect_remote(host, port, "TasKy")  # transactional client
txn.execute("DELETE FROM Task")
print("during txn, another session still sees",
      tasky.execute("SELECT * FROM Task").rowcount, "rows (WAL snapshot)")
txn.rollback()
print("after rollback:", tasky.execute("SELECT * FROM Task").rowcount, "rows")
txn.close()

# ---------------------------------------------------------------------------
# 3. Paging and pipelining
# ---------------------------------------------------------------------------
paged = repro.connect_remote(host, port, "TasKy", autocommit=True, page_size=2)
cursor = paged.execute("SELECT task FROM Task ORDER BY task")
print("\npaged fetch (2 rows/frame):", [row[0] for row in cursor])
paged.close()

results = do.pipeline([
    ("INSERT INTO Todo(author, task) VALUES (?, ?)", ("Ann", "Buy milk")),
    ("INSERT INTO Todo(author, task) VALUES (?, ?)", ("Ben", "Call home")),
    "SELECT count(author) FROM Todo",
])
print("pipelined batch: 2 inserts + count =", results[2].fetchone()[0])
print("the writes surfaced in TasKy with the dropped-column default:",
      tasky.execute("SELECT task, prio FROM Task WHERE task = 'Buy milk'").fetchall())

# ---------------------------------------------------------------------------
# 4. Catalog transitions reach connected clients cleanly
# ---------------------------------------------------------------------------
tasky.execute("DROP SCHEMA VERSION Do!;")  # DDL over the wire
try:
    do.execute("SELECT * FROM Todo")
except OperationalError as exc:
    print(f"\nclient bound to the dropped version: OperationalError: {exc}")

do.close()
tasky.close()
server.close()
backend.close()
print("\nserver closed; all sessions returned to the pool")
