"""Reproduce the paper's formal bidirectionality proofs mechanically
(Section 5 and Appendix A).

For each SMO, the two mapping rule sets γ_tgt/γ_src are composed (Lemma 1),
simplified with Lemmas 2–5, and checked to collapse to the identity rules —
the symmetric-lens round-trip laws.

Run with:  python examples/formal_verification.py
"""

from repro.datalog.pretty import format_symbolic_rules
from repro.verification import symbolic_spec_for, verify_smo_symbolically
from repro.verification.bidirectionality import ALL_SYMBOLIC_SPECS


def main() -> None:
    print("Symbolic bidirectionality verification (Conditions 26 and 27)\n")
    for name in sorted(ALL_SYMBOLIC_SPECS):
        spec = symbolic_spec_for(name)
        c27, c26 = verify_smo_symbolically(spec)
        status27 = "PROVEN" if c27.holds else "FAILED"
        status26 = "PROVEN" if c26.holds else "FAILED"
        print(f"{spec.name:18s} condition 27: {status27}   condition 26: {status26}")

    # Show the SPLIT derivation in detail, like Section 5 of the paper.
    spec = symbolic_spec_for("split")
    print("\n" + "=" * 66)
    print("SPLIT in detail — the Section 5 derivation")
    print("=" * 66)
    print(format_symbolic_rules(spec.gamma_tgt, title="γ_tgt (Rules 12–17)"))
    print()
    print(format_symbolic_rules(spec.gamma_src, title="γ_src (Rules 18–25)"))
    c27, _ = verify_smo_symbolically(spec, collect_trace=True)
    print()
    print(
        format_symbolic_rules(
            c27.simplified,
            title="γ_src(γ_tgt(T_D)) after simplification — the identity (Rule 45)",
        )
    )
    print(f"\n({len(c27.trace)} lemma applications recorded; rerun with "
          "collect_trace to inspect each step)")


if __name__ == "__main__":
    main()
