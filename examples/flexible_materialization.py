"""The DBA story (Sections 7 and 8.3): adapt the physical table schema to a
shifting workload without touching a single line of application code.

Run with:  python examples/flexible_materialization.py
"""

import time

from repro.catalog.materialization import (
    enumerate_valid_materializations,
    physical_table_versions,
)
from repro.workloads.tasky import build_tasky


def timed_read(connection, table: str, repeat: int = 5) -> float:
    cursor = connection.cursor()
    start = time.perf_counter()
    for _ in range(repeat):
        cursor.execute(f"SELECT * FROM {table}").fetchall()
    return (time.perf_counter() - start) / repeat * 1000


def main() -> None:
    scenario = build_tasky(5000)
    engine = scenario.engine

    print("All valid materialization schemas of the TasKy genealogy (Table 2):")
    for schema in enumerate_valid_materializations(engine.genealogy):
        smos = sorted(smo.smo_type for smo in schema)
        physical = [tv.name for tv in physical_table_versions(engine.genealogy, schema)]
        print(f"  M={smos!r:45s} -> P={physical}")

    print("\nRead latency per version under each full-version materialization:")
    for target in ["TasKy", "Do!", "TasKy2"]:
        scenario.materialize(target)
        tasky_ms = timed_read(scenario.connect("TasKy"), "Task")
        do_ms = timed_read(scenario.connect("Do!"), "Todo")
        tasky2_ms = timed_read(scenario.connect("TasKy2"), "Task")
        print(
            f"  materialized={target:7s} read TasKy={tasky_ms:7.2f}ms  "
            f"Do!={do_ms:7.2f}ms  TasKy2={tasky2_ms:7.2f}ms"
        )

    print(
        "\nEach version is fastest when its own table versions are physical —"
        "\nand switching costs one MATERIALIZE statement, not a rewrite of"
        "\nhand-maintained delta code."
    )


if __name__ == "__main__":
    main()
