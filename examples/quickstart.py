"""Quickstart: the paper's TasKy example through the SQL interface.

Every co-existing schema version behaves like a full-fledged relational
database: ``repro.connect(db, version=...)`` opens a PEP-249 (DB-API)
connection to one version, and plain SQL with ``?`` parameter binding
reads and writes it — while the engine keeps all other versions in sync
through the generated BiDEL mapping logic (Section 2, Figure 1).

Run with:  python examples/quickstart.py
"""

import repro


def main() -> None:
    db = repro.InVerDa()

    # Release 1: the TasKy desktop app goes live.
    db.execute(
        """
        CREATE SCHEMA VERSION TasKy WITH
        CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
        """
    )
    tasky = repro.connect(db, "TasKy", autocommit=True)
    tasky.executemany(
        "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
        [
            ("Ann", "Organize party", 3),
            ("Ben", "Learn for exam", 2),
            ("Ann", "Write paper", 1),
            ("Ben", "Clean room", 1),
        ],
    )

    # A third-party phone app needs its own schema version — one BiDEL
    # script makes it immediately readable AND writable. DDL can go
    # through the engine or through any cursor.
    db.execute(
        """
        CREATE SCHEMA VERSION Do! FROM TasKy WITH
        SPLIT TABLE Task INTO Todo WITH prio = 1;
        DROP COLUMN prio FROM Todo DEFAULT 1;
        """
    )

    # Release 2 normalizes the schema; TasKy stays alive for old clients.
    db.execute(
        """
        CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
        DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
        RENAME COLUMN author IN Author TO name;
        """
    )

    do = repro.connect(db, "Do!", autocommit=True)
    tasky2 = repro.connect(db, "TasKy2", autocommit=True)

    print("Do!.Todo (urgent tasks only):")
    for author, task in do.execute("SELECT author, task FROM Todo ORDER BY task"):
        print(f"   {author}: {task}")

    print("TasKy2.Author (normalized, ids generated):")
    for row in tasky2.execute("SELECT id, name FROM Author ORDER BY name"):
        print("  ", row)

    # Writes through ANY version are visible in ALL versions.
    do.execute("INSERT INTO Todo(author, task) VALUES (?, ?)", ("Ann", "Buy milk"))
    print("\nAfter inserting through the phone app:")
    cursor = tasky.execute("SELECT task FROM Task ORDER BY task")
    print("  TasKy sees:", [task for (task,) in cursor])
    count = tasky2.execute("SELECT * FROM Author").rowcount
    print("  TasKy2 author count (Ann reused):", count)

    # Transactions roll back across versions: abandon a phone-app write
    # and it disappears from the desktop app's version, too.
    try:
        with repro.connect(db, "Do!") as txn:
            txn.execute("DELETE FROM Todo WHERE author = ?", ("Ben",))
            raise RuntimeError("user hit cancel")
    except RuntimeError:
        pass
    remaining = tasky.execute(
        "SELECT * FROM Task WHERE author = ? AND prio = ?", ("Ben", 1)
    ).rowcount
    print("\nRolled-back delete: Ben's urgent tasks still in TasKy:", remaining)

    # The DBA moves the physical data with one line — no developer involved.
    print("\nPhysical tables before:", db.physical_tables())
    db.execute("MATERIALIZE 'TasKy2';")
    print("Physical tables after: ", db.physical_tables())
    print("All versions still answer identically:")
    cursor = do.execute("SELECT task FROM Todo ORDER BY task")
    print("  Do! still sees:", [task for (task,) in cursor])


if __name__ == "__main__":
    main()
