"""Quickstart: the paper's TasKy example end to end (Section 2, Figure 1).

Run with:  python examples/quickstart.py
"""

from repro import InVerDa


def main() -> None:
    db = InVerDa()

    # Release 1: the TasKy desktop app goes live.
    db.execute(
        """
        CREATE SCHEMA VERSION TasKy WITH
        CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
        """
    )
    tasky = db.connect("TasKy")
    for author, task, prio in [
        ("Ann", "Organize party", 3),
        ("Ben", "Learn for exam", 2),
        ("Ann", "Write paper", 1),
        ("Ben", "Clean room", 1),
    ]:
        tasky.insert("Task", {"author": author, "task": task, "prio": prio})

    # A third-party phone app needs its own schema version — one BiDEL
    # script makes it immediately readable AND writable.
    db.execute(
        """
        CREATE SCHEMA VERSION Do! FROM TasKy WITH
        SPLIT TABLE Task INTO Todo WITH prio = 1;
        DROP COLUMN prio FROM Todo DEFAULT 1;
        """
    )

    # Release 2 normalizes the schema; TasKy stays alive for old clients.
    db.execute(
        """
        CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
        DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
        RENAME COLUMN author IN Author TO name;
        """
    )

    do = db.connect("Do!")
    tasky2 = db.connect("TasKy2")

    print("Do!.Todo (urgent tasks only):")
    for row in do.select("Todo", order_by="task"):
        print("  ", row)

    print("TasKy2.Author (normalized, ids generated):")
    for row in tasky2.select("Author", order_by="name"):
        print("  ", row)

    # Writes through ANY version are visible in ALL versions.
    do.insert("Todo", {"author": "Ann", "task": "Buy milk"})
    print("\nAfter inserting through the phone app:")
    print("  TasKy sees:", [r["task"] for r in tasky.select("Task", order_by="task")])
    print("  TasKy2 author count (Ann reused):", tasky2.count("Author"))

    # The DBA moves the physical data with one line — no developer involved.
    print("\nPhysical tables before:", db.physical_tables())
    db.execute("MATERIALIZE 'TasKy2';")
    print("Physical tables after: ", db.physical_tables())
    print("All versions still answer identically:")
    print("  Do! still sees:", [r["task"] for r in do.select("Todo", order_by="task")])


if __name__ == "__main__":
    main()
