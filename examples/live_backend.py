"""The live SQLite backend: generated views + INSTEAD OF triggers.

The paper's system generates delta code *inside the DBMS* so that every
schema version is a full read/write SQL interface executed by the standard
query engine. This walkthrough builds the TasKy scenario, attaches the
SQLite backend, and shows

1. writes against a derived version's view propagating purely inside
   SQLite via the generated trigger cascade,
2. the generated delta code itself,
3. ``MATERIALIZE`` running as an in-place SQL migration.

Run with: PYTHONPATH=src python examples/live_backend.py
"""

import repro
from repro.backend.sqlite import LiveSqliteBackend

db = repro.InVerDa()
db.execute("""
    CREATE SCHEMA VERSION TasKy WITH
    CREATE TABLE Task(author TEXT, task TEXT, prio INTEGER);
""")

# Attach the live backend: from here on SQLite is the data plane.
backend = LiveSqliteBackend.attach(db)

tasky = repro.connect(db, "TasKy", autocommit=True)   # picks the backend up
assert tasky.backend_name == "sqlite"
tasky.executemany(
    "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
    [("Ann", "Organize party", 3), ("Ben", "Clean room", 1),
     ("Ann", "Write paper", 1)],
)

# Evolving regenerates the delta code: new views + triggers appear.
db.execute("""
    CREATE SCHEMA VERSION Do! FROM TasKy WITH
    SPLIT TABLE Task INTO Todo WITH prio = 1;
    DROP COLUMN prio FROM Todo DEFAULT 1;
""")
db.execute("""
    CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH
    DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN KEY author;
    RENAME COLUMN author IN Author TO name;
""")

print("== generated delta code (excerpt) ==")
rows = backend.connection.execute(
    "SELECT sql FROM sqlite_master WHERE name IN ('v1__Todo', 'tg__2__insert')"
).fetchall()
for (sql,) in rows:
    print(sql, "\n")

# A write through the phone app's view: SQLite's trigger cascade carries
# it through DROP COLUMN and SPLIT into the physical Task table, and the
# FK decomposition's ID table is maintained along the way.
do = repro.connect(db, "Do!", autocommit=True)
do.execute("INSERT INTO Todo(author, task) VALUES (?, ?)", ("Cara", "Buy milk"))

tasky2 = repro.connect(db, "TasKy2", autocommit=True)
print("TasKy sees :", tasky.execute(
    "SELECT author, task, prio FROM Task WHERE task = 'Buy milk'").fetchall())
print("TasKy2 sees:", tasky2.execute(
    "SELECT name FROM Author ORDER BY name").fetchall())

# MATERIALIZE = generated in-place SQL migration. Visible contents of
# every version are untouched; the physical tables move.
print("physical before:", [t for t in backend.table_names() if t.startswith("d__")])
tasky.execute("MATERIALIZE 'TasKy2';")
print("physical after :", [t for t in backend.table_names() if t.startswith("d__")])
print("Do! still sees :", do.execute(
    "SELECT author, task FROM Todo ORDER BY task").fetchall())

# Pushed-down SQL: predicates, ORDER BY, LIMIT run on SQLite's engine.
cur = tasky.execute(
    "SELECT author, prio FROM Task WHERE prio IN (?, ?) AND author IS NOT NULL "
    "ORDER BY prio DESC, author LIMIT 2", (1, 3))
print("pushdown       :", cur.fetchall())
