"""A 171-version evolution with the Wikimedia SMO profile (Section 8.1/8.3).

Data written in any of the 171 schema versions is visible in all 170
others; the DBA can park the physical tables at any version.

Run with:  python examples/wikimedia_evolution.py
"""

import time

import repro
from repro.workloads.wikimedia import TABLE4_HISTOGRAM, build_wikimedia


def main() -> None:
    start = time.perf_counter()
    scenario = build_wikimedia(scale=0.005)
    built = time.perf_counter() - start
    print(
        f"Built {len(scenario.version_names)} schema versions "
        f"({scenario.pages} pages, {scenario.links} links) in {built:.1f}s"
    )

    print("\nSMO histogram (Table 4):")
    for kind, count in scenario.smo_histogram().items():
        print(f"  {kind:14s} {count:3d}  (paper: {TABLE4_HISTOGRAM[kind]})")

    engine = scenario.engine
    early = repro.connect(engine, scenario.version_at(28), autocommit=True).cursor()
    late = repro.connect(engine, scenario.version_at(171), autocommit=True).cursor()

    # A write through the earliest version...
    v001 = repro.connect(engine, "v001", autocommit=True)
    v001.execute(
        "INSERT INTO page(title, namespace, text_len) VALUES (?, ?, ?)",
        ("Fresh_Page", 0, 123),
    )

    # ...is visible 170 versions later.
    found = late.execute("SELECT * FROM page WHERE title = ?", ("Fresh_Page",)).fetchall()
    print(f"\nRow inserted at v001 visible at v171: {bool(found)}")

    # Migrate the physical home to the version where most traffic lives.
    for target_index in (1, 109, 171):
        target = scenario.version_at(target_index)
        start = time.perf_counter()
        engine.execute(f"MATERIALIZE '{target}';")
        migrated = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        late.execute("SELECT * FROM page").fetchall()
        read_late = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        early.execute("SELECT * FROM page").fetchall()
        read_early = (time.perf_counter() - start) * 1000
        print(
            f"materialized {target}: migration {migrated:7.1f}ms, "
            f"read v171.page {read_late:6.1f}ms, read v028.page {read_early:6.1f}ms"
        )


if __name__ == "__main__":
    main()
