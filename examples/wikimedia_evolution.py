"""A 171-version evolution with the Wikimedia SMO profile (Section 8.1/8.3).

Data written in any of the 171 schema versions is visible in all 170
others; the DBA can park the physical tables at any version.

Run with:  python examples/wikimedia_evolution.py
"""

import time

from repro.workloads.wikimedia import TABLE4_HISTOGRAM, build_wikimedia


def main() -> None:
    start = time.perf_counter()
    scenario = build_wikimedia(scale=0.005)
    built = time.perf_counter() - start
    print(
        f"Built {len(scenario.version_names)} schema versions "
        f"({scenario.pages} pages, {scenario.links} links) in {built:.1f}s"
    )

    print("\nSMO histogram (Table 4):")
    for kind, count in scenario.smo_histogram().items():
        print(f"  {kind:14s} {count:3d}  (paper: {TABLE4_HISTOGRAM[kind]})")

    engine = scenario.engine
    early = engine.connect(scenario.version_at(28))
    late = engine.connect(scenario.version_at(171))

    # A write through the earliest version...
    v001 = engine.connect("v001")
    v001.insert("page", {"title": "Fresh_Page", "namespace": 0, "text_len": 123})

    # ...is visible 170 versions later.
    found = late.select("page", "title = 'Fresh_Page'")
    print(f"\nRow inserted at v001 visible at v171: {bool(found)}")

    # Migrate the physical home to the version where most traffic lives.
    for target_index in (1, 109, 171):
        target = scenario.version_at(target_index)
        start = time.perf_counter()
        engine.execute(f"MATERIALIZE '{target}';")
        migrated = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        late.select("page")
        read_late = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        early.select("page")
        read_early = (time.perf_counter() - start) * 1000
        print(
            f"materialized {target}: migration {migrated:7.1f}ms, "
            f"read v171.page {read_late:6.1f}ms, read v028.page {read_early:6.1f}ms"
        )


if __name__ == "__main__":
    main()
