#!/usr/bin/env python
"""The mypy gate behind CI's ``static-analysis`` job.

The repository has zero runtime dependencies and the development
container does not ship mypy, so this wrapper is the portable entry
point:

- when mypy **is** importable (CI pip-installs it), run it over
  ``src/repro`` with the ``[tool.mypy]`` configuration from
  ``pyproject.toml`` and propagate its exit status;
- when it is **not**, print a notice and exit 0 — the gate must never
  block local work on a missing tool, and the project lint
  (``python -m repro.check --lint``) still runs everywhere.

Run from the repository root: ``python scripts/typecheck.py``
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main() -> int:
    if importlib.util.find_spec("mypy") is None:
        print("typecheck: mypy is not installed; skipping (CI installs it)")
        return 0
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        os.path.join(REPO, "pyproject.toml"),
        os.path.join(REPO, "src", "repro"),
    ]
    print("typecheck:", " ".join(command[1:]))
    return subprocess.call(command)


if __name__ == "__main__":
    raise SystemExit(main())
