#!/usr/bin/env python
"""Observability smoke test: the metrics endpoint of a live server.

Exercises the scrape path the way a Prometheus deployment would:

1. start ``python -m repro.server --demo --metrics-port 0``;
2. run a handful of statements over TCP;
3. ``GET /metrics`` and assert the core series are present with the
   right types;
4. run more statements, scrape again, and assert the counters moved
   monotonically (a scrape endpoint that resets between scrapes is
   useless to a rate() query).

Run from the repository root: ``PYTHONPATH=src python scripts/obs_smoke.py``
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server.client import connect_remote  # noqa: E402

CORE_SERIES = {
    "repro_statements_total": "counter",
    "repro_statement_latency_seconds": "histogram",
    "repro_plan_cache_events_total": "counter",
    "repro_server_requests_total": "counter",
    "repro_server_clients": "gauge",
    "repro_catalog_generation": "gauge",
}


def start_server() -> tuple[subprocess.Popen, str, int, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.server", "--port", "0",
            "--demo", "--demo-rows", "20", "--metrics-port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    address = metrics_url = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"  [server] {line}")
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            address = (match.group(1), int(match.group(2)))
        match = re.search(r"metrics endpoint on (\S+)", line)
        if match:
            metrics_url = match.group(1)
        if address and metrics_url:
            return process, address[0], address[1], metrics_url
    process.kill()
    raise SystemExit("server did not report both addresses")


def scrape(metrics_url: str) -> str:
    return urllib.request.urlopen(metrics_url, timeout=10.0).read().decode("utf-8")


def counter_value(text: str, sample: str) -> float:
    """Sum every series of a counter family (or read one exact sample)."""
    total, found = 0.0, False
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name = line.split("{")[0].split(" ")[0]
        if name == sample:
            total += float(line.rsplit(" ", 1)[1])
            found = True
    assert found, f"no samples for {sample!r} in scrape:\n{text}"
    return total


def run_statements(host: str, port: int, ops: int) -> None:
    conn = connect_remote(host, port, "TasKy", timeout=10.0, autocommit=True)
    try:
        for _ in range(ops):
            conn.execute("SELECT author, task FROM Task").fetchall()
    finally:
        conn.close()


def main() -> int:
    print("== phase 1: demo server with a metrics endpoint")
    process, host, port, metrics_url = start_server()
    try:
        run_statements(host, port, 5)

        print("== phase 2: scrape and check the core series")
        first = scrape(metrics_url)
        for family, metric_type in CORE_SERIES.items():
            type_line = f"# TYPE {family} {metric_type}"
            assert type_line in first, f"missing {type_line!r} in scrape"
        assert 'repro_statement_latency_seconds_bucket' in first
        assert 'le="+Inf"' in first
        print(f"  {len(CORE_SERIES)} core series present")

        print("== phase 3: counters are monotone across scrapes")
        before = counter_value(first, "repro_statements_total")
        requests_before = counter_value(first, "repro_server_requests_total")
        run_statements(host, port, 5)
        second = scrape(metrics_url)
        after = counter_value(second, "repro_statements_total")
        requests_after = counter_value(second, "repro_server_requests_total")
        assert after == before + 5, (
            f"repro_statements_total moved {before} -> {after}, expected +5"
        )
        assert requests_after > requests_before, (
            f"repro_server_requests_total did not advance: "
            f"{requests_before} -> {requests_after}"
        )
        print(f"  repro_statements_total {before} -> {after}; "
              f"repro_server_requests_total {requests_before} -> {requests_after}")
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait()

    print("observability smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
