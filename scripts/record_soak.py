"""Record the soak trajectory point: one seeded soak phase per transport
with every probe live, written to ``BENCH_soak.json`` at the repo root
via ``benchmarks/record.py``.

The numbers that matter across PRs: sustained mixed-workload throughput
while the SMO stream keeps evolving the catalog, and the client p95
inside DDL windows (the bounded-stall promise).  Exits non-zero if any
phase fails a probe — the trajectory point is still written, because the
numbers matter most when the run goes red.
"""

from __future__ import annotations

import argparse
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, os.path.join(ROOT, "benchmarks"))

import record  # noqa: E402 - needs the benchmarks/ path above

from repro.soak import SoakConfig, run_soak  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--smo-rate", type=float, default=0.5)
    args = parser.parse_args(argv)

    phases = []
    ok = True
    for transport in ("inproc", "tcp"):
        report = run_soak(
            SoakConfig(
                seed=args.seed,
                duration=args.duration,
                clients=args.clients,
                smo_rate=args.smo_rate,
                transport=transport,
            )
        )
        ok &= report["ok"]
        stats = report["stats"]
        latency = next(
            (p["details"] for p in report["probes"] if p["name"] == "latency"), {}
        )
        phase = {
            "transport": transport,
            "ok": report["ok"],
            "ops": stats["ops"],
            "ops_per_sec": stats["ops_per_sec"],
            "smo_executed": stats["smo_executed"],
            "barriers": stats["barriers"],
            "final_versions": len(stats["final_versions"]),
            "p95_ms": latency.get("p95_ms"),
            "ddl_p95_ms": latency.get("ddl_p95_ms"),
        }
        phases.append(phase)
        print(
            f"[{transport}] {'OK' if report['ok'] else 'FAIL'}: "
            f"{phase['ops_per_sec']} ops/s, {phase['smo_executed']} SMOs, "
            f"p95 {phase['p95_ms']} ms (DDL windows {phase['ddl_p95_ms']} ms)"
        )
        if not report["ok"]:
            print(f"  replay: {report['repro_command']}", file=sys.stderr)

    path = record.record(
        "soak",
        {
            "seed": args.seed,
            "duration_s": args.duration,
            "clients": args.clients,
            "smo_rate": args.smo_rate,
            "phases": phases,
        },
    )
    print(f"recorded {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
