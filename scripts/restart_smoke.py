#!/usr/bin/env python
"""Restart smoke test: a killed server restarts into the same catalog.

Exercises the durable-catalog path end to end, the way an operator
would hit it:

1. start ``python -m repro.server --demo --database state.db``;
2. over TCP, write a marker row and record the catalog fingerprint;
3. ``SIGKILL`` the server — no clean shutdown, no checkpoint;
4. restart ``python -m repro.server --db state.db --metrics-port 0``
   (no script/demo: the server must recover everything from the file);
5. every schema version answers again, the marker row survived, the
   catalog fingerprint is unchanged, and writes still propagate;
6. the recovered server reports how long recovery took, and the
   ``repro_catalog_generation`` gauge on the scrape endpoint matches the
   generation committed on disk (``on_disk_generation``).

Run from the repository root: ``PYTHONPATH=src python scripts/restart_smoke.py``
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.server.client import connect_remote  # noqa: E402

VERSIONS = ["TasKy", "Do!", "TasKy2"]
MARKER = "restart smoke marker"


def start_server(*args: str) -> tuple[subprocess.Popen, str, int, str | None]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    want_metrics = "--metrics-port" in args
    address = metrics_url = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"  [server] {line}")
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        if match:
            address = (match.group(1), int(match.group(2)))
        match = re.search(r"metrics endpoint on (\S+)", line)
        if match:
            metrics_url = match.group(1)
        if address and (metrics_url or not want_metrics):
            return process, address[0], address[1], metrics_url
    process.kill()
    raise SystemExit("server did not report a listening address")


def connect(host: str, port: int, version: str):
    deadline = time.time() + 10
    while True:
        try:
            return connect_remote(host, port, version, timeout=10.0, autocommit=True)
        except Exception:
            if time.time() > deadline:
                raise
            time.sleep(0.2)


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="repro-restart-smoke-")
    database = os.path.join(workdir, "state.db")

    print("== phase 1: demo server builds the catalog into the database file")
    process, host, port, _metrics = start_server(
        "--demo", "--demo-rows", "20", "--database", database
    )
    try:
        conn = connect(host, port, "TasKy")
        conn.execute(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
            ("smoke", MARKER, 1),
        )
        status = conn.server_status()
        fingerprint = status["catalog"]["fingerprint"]
        generation = status["catalog"]["generation"]
        print(f"  marker written; catalog generation {generation}, "
              f"fingerprint {fingerprint[:12]}")
        conn.close()
    finally:
        print("== phase 2: SIGKILL the server (no clean shutdown)")
        process.send_signal(signal.SIGKILL)
        process.wait()

    print("== phase 3: restart from the bare file (no --script, no --demo)")
    process, host, port, metrics_url = start_server(
        "--db", database, "--metrics-port", "0"
    )
    try:
        conn = connect(host, port, "TasKy")
        status = conn.server_status()
        assert status["catalog"]["fingerprint"] == fingerprint, (
            "catalog fingerprint changed across restart: "
            f"{status['catalog']['fingerprint']} != {fingerprint}"
        )
        assert status["catalog"]["generation"] == generation
        assert status["versions"] == VERSIONS, status["versions"]

        # Observability of the recovery itself: the status reports how
        # long recovery took, and the catalog-generation gauge on the
        # scrape endpoint matches the generation committed on disk.
        recovery_seconds = status["catalog"]["recovery_seconds"]
        assert isinstance(recovery_seconds, float) and recovery_seconds > 0, (
            f"recovered server did not report a recovery duration: "
            f"{recovery_seconds!r}"
        )
        on_disk = status["catalog"]["on_disk_generation"]
        assert on_disk == generation, (
            f"on-disk generation drifted across restart: {on_disk} != {generation}"
        )
        import urllib.request

        scrape = (
            urllib.request.urlopen(metrics_url, timeout=10.0)
            .read()
            .decode("utf-8")
        )
        assert f"repro_catalog_generation {on_disk}" in scrape, (
            "repro_catalog_generation gauge does not match the on-disk "
            f"generation {on_disk}:\n" + scrape
        )
        assert "repro_recoveries_total 1" in scrape, scrape
        assert "repro_recovery_duration_seconds_count 1" in scrape, scrape
        print(f"  recovery reported: {recovery_seconds * 1000:.1f} ms; "
              f"generation gauge == on-disk generation {on_disk}")
        conn.close()

        expectations = {
            "TasKy": "SELECT author, task FROM Task WHERE task = ?",
            "Do!": "SELECT author, task FROM Todo WHERE task = ?",
            "TasKy2": "SELECT task FROM Task WHERE task = ?",
        }
        for version in VERSIONS:
            conn = connect(host, port, version)
            rows = conn.execute(expectations[version], (MARKER,)).fetchall()
            assert rows, f"marker row missing in {version!r} after restart"
            print(f"  {version}: marker visible ({rows[0]})")
            conn.close()

        print("== phase 4: the recovered catalog still accepts writes")
        conn = connect(host, port, "Do!")
        conn.execute(
            "INSERT INTO Todo(author, task) VALUES (?, ?)", ("smoke", "post-restart")
        )
        conn.close()
        conn = connect(host, port, "TasKy")
        rows = conn.execute(
            "SELECT prio FROM Task WHERE task = ?", ("post-restart",)
        ).fetchall()
        assert rows == [(1,)], f"write through Do! did not propagate: {rows}"
        conn.close()

        print("== phase 5: SIGTERM drains gracefully and exits 0")
        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30)
        for line in process.stdout:
            sys.stdout.write(f"  [server] {line}")
        assert returncode == 0, (
            f"drained server exited {returncode}, expected 0"
        )
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
            process.wait()

    print("== phase 6: the drained file reopens clean (no recovery repairs)")
    process, host, port, _metrics = start_server("--db", database)
    try:
        conn = connect(host, port, "TasKy")
        rows = conn.execute(
            "SELECT prio FROM Task WHERE task = ?", ("post-restart",)
        ).fetchall()
        assert rows == [(1,)], f"post-drain reopen lost data: {rows}"
        conn.close()
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait()

    print("restart smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
