"""Section 8.1: delta-code generation latency (<1 s in the paper)."""

from repro.bench.harness import get_experiment
from repro.core.engine import InVerDa
from repro.workloads.tasky import DO_SCRIPT, TASKY_INITIAL_SCRIPT


def test_codegen_evolution_latency(benchmark):
    def evolve():
        engine = InVerDa()
        engine.execute(TASKY_INITIAL_SCRIPT)
        engine.execute(DO_SCRIPT)
        return engine

    engine = benchmark(evolve)
    assert "Do!" in engine.version_names()


def test_codegen_rows(print_result):
    result = get_experiment("codegen").run(num_tasks=2000)
    # The paper's headline: generation is fast (<1 s per operation).
    for operation, ms, _paper in result.rows:
        assert ms < 1000, operation
    print_result(result)
