"""Table 4: the Wikimedia evolution's SMO histogram."""

from repro.bench.harness import get_experiment
from repro.workloads.wikimedia import TABLE4_HISTOGRAM, build_wikimedia


def test_table4(benchmark, print_result):
    scenario = benchmark.pedantic(
        lambda: build_wikimedia(scale=0.001, versions=171), rounds=1, iterations=1
    )
    assert scenario.smo_histogram() == TABLE4_HISTOGRAM
    assert len(scenario.version_names) == 171
    print_result(get_experiment("table4").run())
