"""Figure 8: generated vs handwritten delta code (timed unit: one read of
each schema version under the evolved materialization)."""

import pytest

from repro.bench.harness import get_experiment
from repro.sqlgen.handwritten import handwritten_tasky
from repro.workloads.tasky import build_tasky

N = 2000


@pytest.fixture(scope="module")
def evolved_scenario():
    scenario = build_tasky(N)
    scenario.materialize("TasKy2")
    return scenario


def test_fig8_read_tasky_generated(benchmark, evolved_scenario):
    cursor = evolved_scenario.connect("TasKy").cursor()
    rows = benchmark(lambda: cursor.execute("SELECT * FROM Task").fetchall())
    assert len(rows) == N


def test_fig8_read_tasky2_generated(benchmark, evolved_scenario):
    cursor = evolved_scenario.connect("TasKy2").cursor()
    rows = benchmark(lambda: cursor.execute("SELECT * FROM Task").fetchall())
    assert len(rows) == N


def test_fig8_read_tasky_handwritten(benchmark):
    baseline = handwritten_tasky(N, materialization="evolved")
    rows = benchmark(baseline.read_tasky)
    assert len(rows) == N


@pytest.fixture(scope="module")
def live_scenario():
    from repro.backend.sqlite import LiveSqliteBackend

    scenario = build_tasky(N)
    LiveSqliteBackend.attach(scenario.engine)
    scenario.materialize("TasKy2")
    return scenario


def test_fig8_read_tasky_sqlite_backend(benchmark, live_scenario):
    cursor = live_scenario.connect("TasKy").cursor()
    rows = benchmark(lambda: cursor.execute("SELECT * FROM Task").fetchall())
    assert len(rows) == N


def test_fig8_writes_sqlite_backend(benchmark, live_scenario):
    cursor = live_scenario.connect("TasKy").cursor()

    def insert_one():
        cursor.execute(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
            ("Zed", "bench", 2),
        )

    benchmark(insert_one)


def test_fig8_writes_generated(benchmark, evolved_scenario):
    cursor = evolved_scenario.connect("TasKy").cursor()

    def insert_one():
        cursor.execute(
            "INSERT INTO Task(author, task, prio) VALUES (?, ?, ?)",
            ("Zed", "bench", 2),
        )

    benchmark(insert_one)


def test_fig8_rows(print_result):
    print_result(get_experiment("fig8").run(num_tasks=N, writes=20))
