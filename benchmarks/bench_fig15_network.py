"""Figure 15 (extension): network serving throughput, remote vs
in-process, at 1/8/32 concurrent clients (timed unit: one batch of
concurrent clients at each count).

Runnable two ways:

- ``pytest benchmarks/bench_fig15_network.py`` — pytest-benchmark
  wrappers timing a fixed concurrent batch on each transport;
- ``python benchmarks/bench_fig15_network.py [--smoke]`` — print the
  full remote-vs-local table (``--smoke`` shrinks the workload for CI
  and asserts that 8-client remote throughput scales over 1 client).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

try:
    import pytest
except ImportError:  # pragma: no cover - CLI use without pytest installed
    pytest = None

from repro.bench.harness import get_experiment

N = 2000
OPS = 50


if pytest is not None:

    @pytest.fixture(scope="module")
    def served_backend(tmp_path_factory):
        from repro.backend.sqlite import LiveSqliteBackend
        from repro.server.server import ReproServer
        from repro.workloads.tasky import build_tasky

        scenario = build_tasky(N)
        backend = LiveSqliteBackend.attach(
            scenario.engine,
            database=str(tmp_path_factory.mktemp("fig15") / "tasky.db"),
            pool_size=16,
        )
        server = ReproServer(scenario.engine).start()
        yield scenario, backend, server
        server.close()
        backend.close()

    def _local(scenario, backend, clients):
        from repro.bench.experiments.fig15 import _run_clients
        from repro.sql.connection import connect

        return _run_clients(
            lambda v: connect(scenario.engine, v, autocommit=True, backend=backend),
            clients=clients,
            ops=OPS,
        )

    def _remote(server, clients):
        from repro.bench.experiments.fig15 import _run_clients
        from repro.server.client import connect_remote

        host, port = server.address
        return _run_clients(
            lambda v: connect_remote(host, port, v, autocommit=True, timeout=120.0),
            clients=clients,
            ops=OPS,
        )

    def test_fig15_local_1_client(benchmark, served_backend):
        scenario, backend, _ = served_backend
        benchmark(lambda: _local(scenario, backend, 1))

    def test_fig15_remote_1_client(benchmark, served_backend):
        _, _, server = served_backend
        benchmark(lambda: _remote(server, 1))

    def test_fig15_remote_8_clients(benchmark, served_backend):
        _, _, server = served_backend
        benchmark(lambda: _remote(server, 8))

    def test_fig15_rows(print_result):
        print_result(
            get_experiment("fig15").run(num_tasks=N, ops=30, client_counts=(1, 4))
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Network serving throughput, remote vs in-process (fig15)."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload; asserts remote throughput scales with clients",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        # Rows large enough that each statement is dominated by SQLite's
        # query engine (which releases the GIL while the server's handler
        # threads run it), op counts small enough for CI.
        result = get_experiment("fig15").run(
            num_tasks=10_000, ops=40, client_counts=(1, 8)
        )
    else:
        result = get_experiment("fig15").run()
    print(result.format())
    if args.smoke:
        by_key = {(row[0], row[1]): row for row in result.rows}
        speedup = by_key[("remote", 8)][5]
        cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
            os.cpu_count() or 1
        )
        # 8 remote clients must not serialize behind the wire protocol:
        # aggregate throughput has to track the hardware.  On a 1-core box
        # speedup > 1 is physically impossible, so the floor only rules
        # out lock-induced collapse (clients queueing behind one another).
        expected = min(cores, 4)
        floor = 0.6 * expected
        print(
            f"\nremote speedup at 8 clients: {speedup:.2f}x "
            f"({cores} core(s), floor {floor:.2f}x)"
        )
        assert speedup > floor, (
            f"remote clients serialized: {speedup:.2f}x aggregate "
            f"throughput at 8 clients on {cores} core(s)"
        )
        pipelined, sequential = _pipeline_throughput()
        print(
            f"pipelined batch: {pipelined:.0f} ops/s vs "
            f"{sequential:.0f} ops/s sequential"
        )
        # Floor 1.1x: on a 1-core box the server cannot overlap execution
        # with the client's writes, so the win is only the saved
        # round-trip waits; multi-core machines measure well above this.
        assert pipelined > 1.1 * sequential, (
            f"pipeline() stopped amortizing round trips: {pipelined:.0f} ops/s "
            f"pipelined vs {sequential:.0f} ops/s sequential"
        )
        print("smoke OK")
    return 0


def _pipeline_throughput(ops: int = 300) -> tuple[float, float]:
    """(pipelined ops/s, sequential ops/s) for one remote client issuing
    ``ops`` cheap statements — a batch written as back-to-back frames must
    beat one round trip per statement."""
    import time

    from repro.backend.sqlite import LiveSqliteBackend
    from repro.server.client import connect_remote
    from repro.server.server import ReproServer
    from repro.workloads.tasky import build_tasky

    scenario = build_tasky(100)
    backend = LiveSqliteBackend.attach(scenario.engine)
    server = ReproServer(scenario.engine).start()
    try:
        conn = connect_remote(*server.address, "TasKy", autocommit=True, timeout=30.0)
        statements = ["SELECT task FROM Task ORDER BY rowid LIMIT 1"] * ops
        conn.pipeline(statements[:10])  # warm the plan cache / statement cache
        start = time.perf_counter()
        for sql in statements:
            conn.execute(sql).fetchall()
        sequential = ops / (time.perf_counter() - start)
        start = time.perf_counter()
        for cursor in conn.pipeline(statements):
            cursor.fetchall()
        pipelined = ops / (time.perf_counter() - start)
        conn.close()
    finally:
        server.close()
        backend.close()
    return pipelined, sequential


if __name__ == "__main__":
    sys.exit(main())
