"""Online MATERIALIZE under live load: serving keeps flowing mid-move.

The claim `MATERIALIZE ONLINE` must back up with numbers: while a
100k-row table is moved to a new physical representation, a mixed
read/write workload from concurrent clients keeps executing — no
statement errors, p95 statement latency *during the move* bounded.

Run it::

    python benchmarks/bench_online_materialize.py            # full (100k rows)
    python benchmarks/bench_online_materialize.py --smoke    # CI gate

``--smoke`` keeps the 100k-row table (that floor is the point) but
shortens the warm-up, asserts the availability gate (zero statement
errors; p95 during the move under ``--budget-ms``), and records the
measured numbers to ``BENCH_online.json`` so the availability trajectory
persists across PRs.
"""

import argparse
import os
import random
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

ROWS = 100_000
CLIENTS = 8
CHUNK_ROWS = 4096


SMALL_ROWS = 2_000


def build(rows: int, database: str):
    import repro
    from repro.backend.sqlite import LiveSqliteBackend

    engine = repro.InVerDa()
    engine.execute(
        "CREATE SCHEMA VERSION v1 WITH\n"
        "CREATE TABLE R(a INTEGER, b INTEGER);\n"
        "CREATE TABLE S(a INTEGER, b INTEGER);"
    )
    backend = LiveSqliteBackend.attach(
        engine, database=database, pool_size=CLIENTS + 4
    )
    conn = repro.connect(engine, "v1", autocommit=True, backend=backend)
    conn.executemany(
        "INSERT INTO R(a, b) VALUES (?, ?)", [(i, i * 2) for i in range(rows)]
    )
    conn.executemany(
        "INSERT INTO S(a, b) VALUES (?, ?)", [(i, i) for i in range(SMALL_ROWS)]
    )
    conn.close()
    engine.execute(
        "CREATE SCHEMA VERSION v2 FROM v1 WITH\n"
        "ADD COLUMN c AS a + b INTO R;\n"
        "ADD COLUMN c AS a + b INTO S;"
    )
    return engine, backend


def client_loop(engine, backend, version, stop, samples, errors, seed):
    """One client: mixed reads and writes until ``stop`` is set.

    Point reads and updates hit the small table ``S``, inserts land in
    the big table ``R`` — both are being moved, so updates exercise the
    change-capture repair and inserts the tail copy, while each
    statement stays cheap enough that the sample stream is dense.
    Appends ``(t_done, seconds)`` per statement to ``samples`` — the
    move window is cut out of that stream afterwards.
    """
    import repro

    rng = random.Random(seed)
    conn = repro.connect(engine, version, autocommit=True, backend=backend)
    try:
        while not stop.is_set():
            key = rng.randrange(SMALL_ROWS)
            op = rng.random()
            start = time.perf_counter()
            try:
                if op < 0.65:
                    conn.execute(
                        "SELECT a, b FROM S WHERE a = ?", (key,)
                    ).fetchall()
                elif op < 0.80:
                    conn.execute(
                        "UPDATE S SET b = b + 1 WHERE a = ?", (key,)
                    )
                else:
                    conn.execute(
                        "INSERT INTO R(a, b) VALUES (?, ?)",
                        (rng.randrange(1_000_000_000) + 10_000_000, key),
                    )
            except Exception as exc:  # any statement error breaks the claim
                errors.append(repr(exc))
                return
            done = time.perf_counter()
            samples.append((done, done - start))
    finally:
        conn.close()


def p95(durations):
    if not durations:
        return 0.0
    ranked = sorted(durations)
    return ranked[min(len(ranked) - 1, int(0.95 * len(ranked)))]


def run(rows: int, clients: int, warmup: float):
    workdir = tempfile.mkdtemp(prefix="repro-bench-online-")
    engine, backend = build(rows, os.path.join(workdir, "online.db"))
    stop = threading.Event()
    per_client = [[] for _ in range(clients)]
    errors: list[str] = []
    threads = [
        threading.Thread(
            target=client_loop,
            args=(engine, backend, "v1" if i % 2 else "v2", stop,
                  per_client[i], errors, 7 * i + 1),
            daemon=True,
        )
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    time.sleep(warmup)  # steady-state latencies before the move starts
    move_start = time.perf_counter()
    engine.materialize(["v2"], online=True, chunk_rows=CHUNK_ROWS)
    move_end = time.perf_counter()
    time.sleep(min(warmup, 0.5))  # a post-move tail for comparison
    stop.set()
    for t in threads:
        t.join(timeout=30)
    backend.close()

    samples = [s for client in per_client for s in client]
    during = [d for done, d in samples if move_start <= done <= move_end]
    outside = [d for done, d in samples if done < move_start or done > move_end]
    return {
        "rows": rows,
        "clients": clients,
        "chunk_rows": CHUNK_ROWS,
        "move_seconds": move_end - move_start,
        "statements_total": len(samples),
        "statements_during_move": len(during),
        "p95_during_move_ms": p95(during) * 1000,
        "p95_outside_move_ms": p95(outside) * 1000,
        "mean_during_move_ms": (
            statistics.mean(during) * 1000 if during else 0.0
        ),
        "errors": errors,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=ROWS)
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: shorter warm-up, assert availability, record "
        "BENCH_online.json",
    )
    parser.add_argument(
        "--budget-ms",
        type=float,
        default=500.0,
        help="p95-during-move budget the smoke gate asserts (milliseconds)",
    )
    args = parser.parse_args(argv)

    warmup = 0.5 if args.smoke else 2.0
    result = run(args.rows, args.clients, warmup)

    print(f"online MATERIALIZE of {result['rows']:,} rows, "
          f"{result['clients']} live clients (65/15/20 read/update/insert):")
    print(f"  move took            {result['move_seconds'] * 1000:10.1f} ms")
    print(f"  statements total     {result['statements_total']:10d}")
    print(f"  statements in move   {result['statements_during_move']:10d}")
    print(f"  p95 during move      {result['p95_during_move_ms']:10.2f} ms")
    print(f"  p95 outside move     {result['p95_outside_move_ms']:10.2f} ms")
    print(f"  statement errors     {len(result['errors']):10d}")

    if args.smoke:
        from record import record

        path = record("online", result, extra={"budget_ms": args.budget_ms})
        print(f"recorded -> {path}")
        assert not result["errors"], (
            f"statements failed during the move: {result['errors'][:3]}"
        )
        assert result["statements_during_move"] > 0, (
            "no statement completed during the move — serving stalled"
        )
        assert result["p95_during_move_ms"] <= args.budget_ms, (
            f"p95 during move {result['p95_during_move_ms']:.1f} ms exceeds "
            f"the {args.budget_ms:.0f} ms budget"
        )
        print("smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
