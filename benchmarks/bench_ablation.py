"""Design ablations: rules vs fast path; key-local delta vs full put."""

from repro.bench.harness import get_experiment


def test_ablation(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: get_experiment("ablation").run(num_tasks=1000, writes=20),
        rounds=1,
        iterations=1,
    )
    by_case = {}
    for case, variant, ms in result.rows:
        by_case.setdefault(case, {})[variant] = ms
    writes = by_case[next(k for k in by_case if "inserts" in k)]
    assert writes["key-local delta"] <= writes["whole-state lens put"]
    print_result(result)
