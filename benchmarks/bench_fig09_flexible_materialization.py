"""Figure 9: fixed vs flexible materialization under shifting adoption."""

from repro.bench.harness import get_experiment


def test_fig9(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: get_experiment("fig9").run(num_tasks=800, slices=8, ops_per_slice=8),
        rounds=1,
        iterations=1,
    )
    by_strategy = {row[0]: row[2] for row in result.rows}
    # The flexible strategy must not lose to the worse fixed choice.
    assert by_strategy["flexible"] <= max(by_strategy["fixed"], by_strategy["fixed-evolved"])
    print_result(result)
