"""Figure 10: Do!→TasKy2 adoption with three fixed materializations."""

from repro.bench.harness import get_experiment


def test_fig10(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: get_experiment("fig10").run(num_tasks=800, slices=8, ops_per_slice=8),
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 4
    print_result(result)
