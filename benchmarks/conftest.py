"""pytest-benchmark wrappers around the repro.bench experiment registry.

Each benchmark file regenerates one table/figure of the paper; the timed
unit is a representative operation of that experiment, and the full result
rows are attached to the benchmark's ``extra_info`` and printed once.
"""

import pytest


@pytest.fixture(scope="session")
def print_result():
    printed = set()

    def _print(result):
        if result.experiment not in printed:
            printed.add(result.experiment)
            print("\n" + result.format())

    return _print
