"""Figure 12: Wikimedia query times under three materializations."""

from repro.bench.harness import get_experiment


def test_fig12(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: get_experiment("fig12").run(scale=0.002, versions=60),
        rounds=1,
        iterations=1,
    )
    assert result.rows
    print_result(result)
