"""Figure 11: every version x every valid materialization x three mixes."""

from repro.bench.harness import get_experiment


def test_fig11(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: get_experiment("fig11").run(num_tasks=600, ops=8),
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 15  # 3 mixes x 5 materializations
    print_result(result)
