"""Persist benchmark results as ``BENCH_<name>.json`` at the repo root.

The perf trajectory must survive across PRs: every ``--smoke`` run of a
benchmark records its measured numbers (plus environment facts a future
reader needs to interpret them) into a ``BENCH_*.json`` file that is
committed alongside the code and uploaded as a CI artifact.  A later PR
that touches the hot path regenerates the file and the diff *is* the
perf trajectory.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sqlite3
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _environment() -> dict:
    cores = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    return {
        "python": platform.python_version(),
        "sqlite": sqlite3.sqlite_version,
        "platform": platform.platform(),
        "cpu_count": cores,
    }


def record(name: str, result, *, extra: dict | None = None, root: Path | None = None) -> Path:
    """Write ``result`` (an ``ExperimentResult`` or a plain dict) to
    ``BENCH_<name>.json`` under ``root`` (default: the repo root);
    returns the written path."""
    if hasattr(result, "columns"):  # repro.bench.harness.ExperimentResult
        payload = {
            "experiment": result.experiment,
            "title": result.title,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "notes": list(result.notes),
        }
    else:
        payload = dict(result)
    document = {
        "name": name,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "environment": _environment(),
        "result": payload,
    }
    if extra:
        document.update(extra)
    path = (root or REPO_ROOT) / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, default=str) + "\n", encoding="utf-8")
    return path


def load(name: str, *, root: Path | None = None) -> dict | None:
    """The previously recorded document for ``name``, or ``None``."""
    path = (root or REPO_ROOT) / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


if __name__ == "__main__":  # pragma: no cover - tiny CLI for inspection
    for bench_file in sorted(REPO_ROOT.glob("BENCH_*.json")):
        document = json.loads(bench_file.read_text(encoding="utf-8"))
        print(f"{bench_file.name}: recorded {document.get('recorded_at')}")
        sys.stdout.write(json.dumps(document.get("environment", {}), indent=2) + "\n")
