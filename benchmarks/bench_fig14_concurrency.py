"""Figure 14 (extension): concurrent multi-session throughput on the
file-backed WAL backend (timed unit: one batch of concurrent read
sessions at each thread count).

Runnable two ways:

- ``pytest benchmarks/bench_fig14_concurrency.py`` — pytest-benchmark
  wrappers timing a fixed concurrent batch;
- ``python benchmarks/bench_fig14_concurrency.py [--smoke]`` — print the
  full throughput-vs-sessions table (``--smoke`` shrinks the workload for
  CI and asserts that concurrent read throughput actually scales).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

try:
    import pytest
except ImportError:  # pragma: no cover - CLI use without pytest installed
    pytest = None

from repro.bench.harness import get_experiment

N = 2000
OPS = 100


def _concurrent_reads(scenario, backend, threads):
    from repro.bench.experiments.fig14 import _run_workload

    return _run_workload(
        scenario.engine, backend, threads=threads, ops=OPS, write_every=None
    )


if pytest is not None:

    @pytest.fixture(scope="module")
    def wal_backend(tmp_path_factory):
        from repro.backend.sqlite import LiveSqliteBackend
        from repro.workloads.tasky import build_tasky

        scenario = build_tasky(N)
        backend = LiveSqliteBackend.attach(
            scenario.engine,
            database=str(tmp_path_factory.mktemp("fig14") / "tasky.db"),
            pool_size=16,
        )
        yield scenario, backend
        backend.close()

    def test_fig14_reads_1_session(benchmark, wal_backend):
        scenario, backend = wal_backend
        benchmark(lambda: _concurrent_reads(scenario, backend, 1))

    def test_fig14_reads_4_sessions(benchmark, wal_backend):
        scenario, backend = wal_backend
        benchmark(lambda: _concurrent_reads(scenario, backend, 4))

    def test_fig14_mixed_4_sessions(benchmark, wal_backend):
        from repro.bench.experiments.fig14 import _run_workload

        scenario, backend = wal_backend
        benchmark(
            lambda: _run_workload(
                scenario.engine, backend, threads=4, ops=OPS, write_every=10
            )
        )

    def test_fig14_rows(print_result):
        print_result(
            get_experiment("fig14").run(num_tasks=N, ops=60, thread_counts=(1, 2, 4))
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent multi-session throughput (fig14)."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload; asserts read throughput scales with sessions",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        # Large enough rows that each read is dominated by SQLite's query
        # engine (which releases the GIL), small enough op counts for CI.
        result = get_experiment("fig14").run(
            num_tasks=10_000, ops=80, thread_counts=(1, 4)
        )
    else:
        result = get_experiment("fig14").run()
    print(result.format())
    if args.smoke:
        by_key = {(row[0], row[1]): row for row in result.rows}
        speedup = by_key[("read", 4)][5]
        cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
            os.cpu_count() or 1
        )
        # WAL readers must not serialize: aggregate throughput of 4
        # concurrent sessions has to track the hardware.  With several
        # cores that means real speedup; on a 1-core box speedup > 1 is
        # physically impossible, so the floor only rules out lock-induced
        # collapse (sessions queueing behind one another).
        expected = min(cores, 4)
        floor = 0.6 * expected
        print(
            f"\nread speedup at 4 sessions: {speedup:.2f}x "
            f"({cores} core(s), floor {floor:.2f}x)"
        )
        assert speedup > floor, (
            f"concurrent reads serialized: {speedup:.2f}x aggregate "
            f"throughput at 4 sessions on {cores} core(s)"
        )
        print("smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
