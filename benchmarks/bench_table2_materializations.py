"""Table 2: enumerate the valid materialization schemas of TasKy."""

from repro.bench.harness import get_experiment
from repro.catalog.materialization import enumerate_valid_materializations
from repro.workloads.tasky import build_tasky


def test_table2(benchmark, print_result):
    scenario = build_tasky(0)

    def enumerate_schemas():
        return enumerate_valid_materializations(scenario.engine.genealogy)

    schemas = benchmark(enumerate_schemas)
    assert len(schemas) == 5  # the paper's count
    print_result(get_experiment("table2").run())
