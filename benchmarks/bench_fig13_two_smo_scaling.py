"""Figure 13: two-SMO chain scaling, ADD COLUMN as the second SMO."""

from repro.bench.harness import get_experiment
from repro.sql.connection import connect
from repro.workloads.micro import build_two_smo_scenario


def test_fig13_single_chain_read(benchmark):
    engine = build_two_smo_scenario("split", "add_column", rows=1000)
    cursor = connect(engine, "v3", autocommit=True).cursor()
    rows = benchmark(lambda: cursor.execute("SELECT * FROM R").fetchall())
    assert rows


def test_fig13_rows(print_result):
    result = get_experiment("fig13").run(sizes=(300, 600))
    # Shape check: two hops cost at least as much as the local read.
    for _first, _rows, local, _one, two_hops, _calc in result.rows:
        assert two_hops >= local * 0.5
    print_result(result)
