"""Table 3: BiDEL vs SQL code size (the timed unit is script generation)."""

from repro.bench.harness import get_experiment
from repro.sqlgen.scripts import tasky_generated_scripts
from repro.util.codemetrics import measure_code


def test_table3(benchmark, print_result):
    scripts = benchmark(tasky_generated_scripts)
    bidel = measure_code(scripts.bidel_evolution)
    sql = measure_code(scripts.sql_evolution)
    # The SQL delta code must be substantially larger than the BiDEL script.
    assert sql.lines > 3 * bidel.lines
    assert sql.characters > 3 * bidel.characters
    print_result(get_experiment("table3").run())
