"""Figure 16 (extension): statement hot-path latency and throughput vs
SMO-chain depth — plan cache (cached vs cold) and flattened views (flat
vs nested), in-process and remote.

Runnable two ways:

- ``pytest benchmarks/bench_fig16_hotpath.py`` — pytest-benchmark
  wrappers timing single cached/cold/flat/nested statements at depth 16;
- ``python benchmarks/bench_fig16_hotpath.py [--smoke]`` — print the
  full latency/throughput table.  ``--smoke`` shrinks the workload for
  CI, asserts the two hot-path claims (cached plans beat cold
  parse+plan; flat views beat nested views ≥2x at depth 16), and records
  the measured numbers to ``BENCH_fig16.json`` so the perf trajectory
  persists across PRs.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

try:
    import pytest
except ImportError:  # pragma: no cover - CLI use without pytest installed
    pytest = None

from repro.bench.harness import get_experiment

DEPTH = 16
ROWS = 3000


if pytest is not None:

    @pytest.fixture(scope="module")
    def chains():
        from repro.backend.sqlite import LiveSqliteBackend
        from repro.bench.experiments.fig16 import build_chain
        from repro.sql.connection import connect

        systems = {}
        for flatten in (True, False):
            engine, table = build_chain(DEPTH, ROWS)
            backend = LiveSqliteBackend.attach(engine, flatten=flatten)
            conn = connect(
                engine, f"S{DEPTH}", autocommit=True, backend=backend
            )
            sql = f"SELECT count(rowid), sum(b) FROM {table}"
            conn.execute(sql).fetchall()  # warm
            systems["flat" if flatten else "nested"] = (backend, conn, sql)
        yield systems
        for backend, conn, _sql in systems.values():
            conn.close()
            backend.close()

    def test_fig16_flat_cached_statement(benchmark, chains):
        _backend, conn, sql = chains["flat"]
        benchmark(lambda: conn.execute(sql).fetchall())

    def test_fig16_nested_statement(benchmark, chains):
        _backend, conn, sql = chains["nested"]
        benchmark(lambda: conn.execute(sql).fetchall())

    def test_fig16_rows(print_result):
        print_result(
            get_experiment("fig16").run(rows=1500, ops=30, depths=(1, 4), remote=False)
        )


def _cached_vs_cold_interleaved(ops: int = 150) -> tuple[float, float]:
    """(cached seconds, cold seconds) for ``ops`` statements each,
    alternating one cached and one cold execution on the SAME flat
    depth-16 system — phase-skew-free basis for the smoke gate."""
    import time

    from repro.backend.sqlite import LiveSqliteBackend
    from repro.bench.experiments.fig16 import build_chain
    from repro.sql import parser as sql_parser
    from repro.sql.connection import connect

    engine, table = build_chain(DEPTH, ROWS)
    backend = LiveSqliteBackend.attach(engine, flatten=True)
    cached_conn = connect(engine, f"S{DEPTH}", autocommit=True, backend=backend)
    cold_conn = connect(
        engine, f"S{DEPTH}", autocommit=True, backend=backend, plan_cache=False
    )
    sql = f"SELECT count(rowid), sum(b) FROM {table}"
    cached_conn.execute(sql).fetchall()  # warm both sessions
    cold_conn.execute(sql).fetchall()
    cached_s = cold_s = 0.0
    try:
        for _ in range(ops):
            start = time.perf_counter()
            cached_conn.execute(sql).fetchall()
            cached_s += time.perf_counter() - start
            sql_parser._parse_statement_cached.cache_clear()
            start = time.perf_counter()
            cold_conn.execute(sql).fetchall()
            cold_s += time.perf_counter() - start
    finally:
        cached_conn.close()
        cold_conn.close()
        backend.close()
    return cached_s, cold_s


def _instrumented_vs_uninstrumented_interleaved(ops: int = 150) -> tuple[float, float]:
    """(instrumented seconds, uninstrumented seconds) for ``ops``
    statements each, alternating metrics-on and metrics-off executions of
    the SAME cached statement on the SAME system — the observability
    layer's overhead gate."""
    import time

    from repro.backend.sqlite import LiveSqliteBackend
    from repro.bench.experiments.fig16 import build_chain
    from repro.sql.connection import connect

    engine, table = build_chain(DEPTH, ROWS)
    backend = LiveSqliteBackend.attach(engine, flatten=True)
    conn = connect(engine, f"S{DEPTH}", autocommit=True, backend=backend)
    sql = f"SELECT count(rowid), sum(b) FROM {table}"
    conn.execute(sql).fetchall()  # warm session, plan cache, metric series
    on_s = off_s = 0.0
    try:
        for _ in range(ops):
            engine.metrics.enabled = True
            start = time.perf_counter()
            conn.execute(sql).fetchall()
            on_s += time.perf_counter() - start
            engine.metrics.enabled = False
            start = time.perf_counter()
            conn.execute(sql).fetchall()
            off_s += time.perf_counter() - start
    finally:
        engine.metrics.enabled = True
        conn.close()
        backend.close()
    return on_s, off_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Statement hot path vs SMO-chain depth (fig16)."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI workload; asserts cached>cold, flat>=2x nested at "
        "depth 16, and metrics overhead <=5%%; records BENCH_fig16.json",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        result = get_experiment("fig16").run(rows=ROWS, ops=80)
    else:
        result = get_experiment("fig16").run()
    print(result.format())
    import record

    path = record.record("fig16", result)
    print(f"\nrecorded {path}")
    if args.smoke:
        by_key = {
            (row[0], f"{row[1]}-{row[2]}", row[3]): row[7] for row in result.rows
        }
        flat = by_key[(DEPTH, "flat-cached", "in-process")]
        cold = by_key[(DEPTH, "flat-cold", "in-process")]
        nested = by_key[(DEPTH, "nested-cached", "in-process")]
        print(
            f"depth {DEPTH}: flat-cached {flat:.1f} ops/s, flat-cold "
            f"{cold:.1f} ops/s, nested {nested:.1f} ops/s"
        )
        # The cached-vs-cold gate interleaves the two modes on ONE system,
        # so ambient CI load skews both sides equally (the table's
        # separately-phased numbers stay informational).
        cached_s, cold_s = _cached_vs_cold_interleaved()
        print(
            f"interleaved at depth {DEPTH}: cached {cached_s:.3f}s vs "
            f"cold {cold_s:.3f}s for the same op count"
        )
        assert cached_s < cold_s, (
            f"cached plans no faster than cold parse+plan: {cached_s:.3f}s "
            f"vs {cold_s:.3f}s interleaved at depth {DEPTH}"
        )
        # The flat-view floor: composed emission must beat the nested view
        # stack by at least 2x at depth 16 (in practice the gap is an
        # order of magnitude — nested UNION chains expand exponentially).
        assert flat >= 2.0 * nested, (
            f"flattened views regressed below the 2x floor: {flat:.1f} vs "
            f"{nested:.1f} ops/s at depth {DEPTH}"
        )
        # The observability bound: the instrumented hot path (metrics
        # registry enabled, tracing off — the production default) must
        # stay within 5% of the uninstrumented baseline.  Interleaved on
        # one system so ambient CI load skews both sides equally.
        for attempt in range(1, 4):
            on_s, off_s = _instrumented_vs_uninstrumented_interleaved()
            overhead = (on_s / off_s - 1.0) * 100.0
            print(
                f"instrumentation at depth {DEPTH} (attempt {attempt}): "
                f"metrics-on {on_s:.3f}s vs metrics-off {off_s:.3f}s "
                f"({overhead:+.2f}% overhead)"
            )
            if on_s <= off_s * 1.05:
                break
        else:
            raise AssertionError(
                f"metrics instrumentation exceeds the 5% overhead bound in "
                f"3 attempts: last {on_s:.3f}s vs {off_s:.3f}s "
                f"({overhead:+.2f}%)"
            )
        print("smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
